#include "psu/efficiency_curve.hpp"

#include <algorithm>
#include <stdexcept>

namespace joules {

EfficiencyCurve::EfficiencyCurve(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("EfficiencyCurve: need at least 2 points");
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].efficiency <= 0.0 || points_[i].efficiency > 1.0) {
      throw std::invalid_argument("EfficiencyCurve: efficiency outside (0,1]");
    }
    if (i > 0 && points_[i].load_frac <= points_[i - 1].load_frac) {
      throw std::invalid_argument("EfficiencyCurve: loads must strictly increase");
    }
  }
  build_segment_hints();
}

std::size_t EfficiencyCurve::cell(double load_frac) const noexcept {
  // Monotone in load_frac: subtract-constant, multiply-by-positive-constant,
  // and truncation are all monotone under round-to-nearest. Monotonicity is
  // what makes the hints safe; exactness is not required.
  const double x = (load_frac - grid_lo_) * grid_scale_;
  if (x <= 0.0) return 0;
  const auto last = static_cast<double>(kGridCells - 1);
  if (x >= last) return kGridCells - 1;
  return static_cast<std::size_t>(x);
}

void EfficiencyCurve::build_segment_hints() {
  grid_lo_ = points_.front().load_frac;
  grid_scale_ = static_cast<double>(kGridCells) /
                (points_.back().load_frac - points_.front().load_frac);
  // Index 1 is the smallest possible upper_bound answer once the front clamp
  // has fired, so it is always a safe scan start.
  hint_.assign(kGridCells, 1);
  // A load mapped to a cell strictly above cell(points_[p].load_frac) is,
  // by monotonicity of cell(), strictly above points_[p].load_frac itself —
  // so its upper_bound answer is at least p + 1.
  for (std::size_t p = 1; p + 1 < points_.size(); ++p) {
    const std::size_t g = cell(points_[p].load_frac);
    if (g + 1 < kGridCells) {
      hint_[g + 1] = static_cast<std::uint32_t>(p + 1);
    }
  }
  for (std::size_t g = 1; g < kGridCells; ++g) {
    hint_[g] = std::max(hint_[g], hint_[g - 1]);
  }
}

double EfficiencyCurve::at(double load_frac) const noexcept {
  if (load_frac <= points_.front().load_frac) return points_.front().efficiency;
  if (load_frac >= points_.back().load_frac) return points_.back().efficiency;
  // Equivalent to std::upper_bound over points_ (first point with
  // load_frac strictly greater), started from the grid hint. The back
  // clamp above guarantees the scan terminates before end().
  std::size_t idx = hint_[cell(load_frac)];
  while (points_[idx].load_frac <= load_frac) ++idx;
  const Point& hi = points_[idx];
  const Point& lo = points_[idx - 1];
  const double t = (load_frac - lo.load_frac) / (hi.load_frac - lo.load_frac);
  return lo.efficiency + t * (hi.efficiency - lo.efficiency);
}

EfficiencyCurve EfficiencyCurve::offset_by(double delta) const {
  std::vector<Point> shifted = points_;
  for (Point& p : shifted) {
    p.efficiency = std::clamp(p.efficiency + delta, kMinEfficiency, 1.0);
  }
  return EfficiencyCurve(std::move(shifted));
}

double EfficiencyCurve::offset_for_observation(double load_frac,
                                               double efficiency) const noexcept {
  return efficiency - at(load_frac);
}

const EfficiencyCurve& pfe600_curve() {
  // Redrawn from the PFE600-12-054xA datasheet curve in Fig. 5: steep rise
  // out of light load, a plateau around 94 % near half load, mild droop at
  // full load.
  static const EfficiencyCurve curve(std::vector<EfficiencyCurve::Point>{
      {0.01, 0.45},
      {0.05, 0.72},
      {0.10, 0.83},
      {0.15, 0.875},
      {0.20, 0.90},
      {0.30, 0.925},
      {0.40, 0.935},
      {0.50, 0.94},
      {0.60, 0.94},
      {0.70, 0.935},
      {0.80, 0.93},
      {0.90, 0.92},
      {1.00, 0.91},
  });
  return curve;
}

double input_power_w(double output_power_w, double capacity_w,
                     const EfficiencyCurve& curve) {
  if (capacity_w <= 0.0) throw std::invalid_argument("input_power_w: capacity <= 0");
  if (output_power_w < 0.0) throw std::invalid_argument("input_power_w: output < 0");
  if (output_power_w == 0.0) return 0.0;  // joules-lint: allow(float-equality) — exact-zero load short-circuit
  return output_power_w / curve.at(output_power_w / capacity_w);
}

double conversion_loss_w(double output_power_w, double capacity_w,
                         const EfficiencyCurve& curve) {
  return input_power_w(output_power_w, capacity_w, curve) - output_power_w;
}

}  // namespace joules
