#include "psu/eighty_plus.hpp"

#include <algorithm>

namespace joules {
namespace {

// 230 V internal-redundant set points.
constexpr std::array<SetPoint, 3> kBronze = {{{0.20, 0.81}, {0.50, 0.85}, {1.00, 0.81}}};
constexpr std::array<SetPoint, 3> kSilver = {{{0.20, 0.85}, {0.50, 0.89}, {1.00, 0.85}}};
constexpr std::array<SetPoint, 3> kGold = {{{0.20, 0.88}, {0.50, 0.92}, {1.00, 0.88}}};
constexpr std::array<SetPoint, 3> kPlatinum = {{{0.20, 0.90}, {0.50, 0.94}, {1.00, 0.91}}};
constexpr std::array<SetPoint, 4> kTitanium = {
    {{0.10, 0.90}, {0.20, 0.94}, {0.50, 0.96}, {1.00, 0.91}}};

}  // namespace

std::string_view to_string(EightyPlusLevel level) noexcept {
  switch (level) {
    case EightyPlusLevel::kBronze: return "Bronze";
    case EightyPlusLevel::kSilver: return "Silver";
    case EightyPlusLevel::kGold: return "Gold";
    case EightyPlusLevel::kPlatinum: return "Platinum";
    case EightyPlusLevel::kTitanium: return "Titanium";
  }
  return "unknown";
}

std::span<const SetPoint> set_points(EightyPlusLevel level) noexcept {
  switch (level) {
    case EightyPlusLevel::kBronze: return kBronze;
    case EightyPlusLevel::kSilver: return kSilver;
    case EightyPlusLevel::kGold: return kGold;
    case EightyPlusLevel::kPlatinum: return kPlatinum;
    case EightyPlusLevel::kTitanium: return kTitanium;
  }
  return {};
}

bool is_certified(const EfficiencyCurve& curve, EightyPlusLevel level) noexcept {
  const auto points = set_points(level);
  return std::all_of(points.begin(), points.end(), [&](const SetPoint& sp) {
    return curve.at(sp.load_frac) >= sp.min_efficiency;
  });
}

std::optional<EightyPlusLevel> certification(const EfficiencyCurve& curve) noexcept {
  std::optional<EightyPlusLevel> best;
  for (const EightyPlusLevel level : kAllEightyPlusLevels) {
    if (is_certified(curve, level)) best = level;
  }
  return best;
}

EfficiencyCurve standard_curve(EightyPlusLevel level) {
  const EfficiencyCurve& reference = pfe600_curve();
  double offset = -1.0;
  for (const SetPoint& sp : set_points(level)) {
    offset = std::max(offset, sp.min_efficiency - reference.at(sp.load_frac));
  }
  return reference.offset_by(offset);
}

}  // namespace joules
