// PSU efficiency curves (§9.1).
//
// A power supply's conversion efficiency is a function of its load fraction
// (delivered power / capacity): typically poor below 10-20 % load, best
// around 50-60 %, slightly declining toward 100 %. The paper models every
// PSU's curve as the PFE600-12-054xA reference curve (Fig. 5) plus a constant
// offset calibrated from a single (load, efficiency) observation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace joules {

class EfficiencyCurve {
 public:
  struct Point {
    double load_frac = 0.0;   // delivered power / capacity, in [0, 1]
    double efficiency = 0.0;  // P_out / P_in, in (0, 1]
  };

  // Points must be strictly increasing in load and have efficiency in (0, 1].
  explicit EfficiencyCurve(std::vector<Point> points);

  // Efficiency at a load fraction, linearly interpolated; clamped to the
  // curve's end values outside the covered range. Always returns a value in
  // (0, 1].
  [[nodiscard]] double at(double load_frac) const noexcept;

  // This curve shifted by a constant efficiency offset, clamped to
  // [kMinEfficiency, 1].
  [[nodiscard]] EfficiencyCurve offset_by(double delta) const;

  // Offset such that `offset_by(...)` passes through (load_frac, efficiency).
  [[nodiscard]] double offset_for_observation(double load_frac,
                                              double efficiency) const noexcept;

  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }

  // Lowest efficiency any shifted curve can report; keeps input power finite.
  static constexpr double kMinEfficiency = 0.05;

 private:
  // The segment-hint grid: `at` is on the per-sample hot path (once per PSU
  // per timestep), so instead of a binary search per call the constructor
  // precomputes, for each uniform grid cell over [front, back], a safe
  // lower bound on the `upper_bound` answer for any load in that cell. `at`
  // then scans forward at most a segment or two. The hints are constructed
  // with the same float expression `cell()` uses, so the selected (lo, hi)
  // segment — and therefore the interpolated value — is bit-identical to
  // the binary-search implementation.
  static constexpr std::size_t kGridCells = 64;
  [[nodiscard]] std::size_t cell(double load_frac) const noexcept;
  void build_segment_hints();

  std::vector<Point> points_;
  std::vector<std::uint32_t> hint_;  // per grid cell: scan-start point index
  double grid_lo_ = 0.0;
  double grid_scale_ = 0.0;
};

// The Platinum-rated PFE600-12-054xA reference curve, redrawn from Fig. 5.
[[nodiscard]] const EfficiencyCurve& pfe600_curve();

// Conversion helpers. Input (wall) power for a delivered power, given the
// PSU capacity and its curve; and the loss in watts.
[[nodiscard]] double input_power_w(double output_power_w, double capacity_w,
                                   const EfficiencyCurve& curve);
[[nodiscard]] double conversion_loss_w(double output_power_w, double capacity_w,
                                       const EfficiencyCurve& curve);

}  // namespace joules
