#include "psu/psu_unit.hpp"

#include <algorithm>

namespace joules {

double PsuObservation::load_frac() const noexcept {
  if (capacity_w <= 0.0) return 0.0;
  return output_power_w / capacity_w;
}

double PsuObservation::efficiency() const noexcept {
  if (input_power_w <= 0.0) return 0.0;
  return std::min(1.0, output_power_w / input_power_w);
}

double PsuObservation::loss_w() const noexcept {
  return std::max(0.0, input_power_w - output_power_w);
}

EfficiencyCurve PsuObservation::calibrated_curve() const {
  const EfficiencyCurve& reference = pfe600_curve();
  return reference.offset_by(
      reference.offset_for_observation(load_frac(), efficiency()));
}

double RouterPsuGroup::total_input_w() const noexcept {
  double total = 0.0;
  for (const PsuObservation& psu : psus) total += psu.input_power_w;
  return total;
}

double RouterPsuGroup::total_output_w() const noexcept {
  double total = 0.0;
  for (const PsuObservation& psu : psus) total += psu.output_power_w;
  return total;
}

std::vector<RouterPsuGroup> group_by_router(
    std::vector<PsuObservation> observations) {
  std::vector<RouterPsuGroup> groups;
  for (PsuObservation& obs : observations) {
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const RouterPsuGroup& g) {
                             return g.router_name == obs.router_name;
                           });
    if (it == groups.end()) {
      RouterPsuGroup group;
      group.router_name = obs.router_name;
      group.router_model = obs.router_model;
      groups.push_back(std::move(group));
      it = std::prev(groups.end());
    }
    it->psus.push_back(std::move(obs));
  }
  return groups;
}

}  // namespace joules
