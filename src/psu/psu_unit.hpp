// The PSU snapshot dataset of §9.2.
//
// The paper combines SNMP P_in traces with a one-time export of each PSU's
// (P_in, P_out) sensor readings and the hardware-inventory capacities. The
// observed efficiency is P_out / P_in capped at 100 % (some sensors report
// P_out > P_in, which is physically impossible — poor sensor quality and/or
// asynchronous reads). All §9 estimators start from `PsuObservation`s.
#pragma once

#include <string>
#include <vector>

#include "psu/efficiency_curve.hpp"

namespace joules {

struct PsuObservation {
  std::string router_name;
  std::string router_model;
  int psu_index = 0;          // slot within the router (0, 1, ...)
  double capacity_w = 0.0;    // maximum deliverable power
  double input_power_w = 0.0;   // P_in: wall power feeding the PSU
  double output_power_w = 0.0;  // P_out: power delivered to the router

  // P_out / capacity.
  [[nodiscard]] double load_frac() const noexcept;
  // P_out / P_in capped at 1.0 (§9.2's capping rule); 0 if P_in is 0.
  [[nodiscard]] double efficiency() const noexcept;
  // P_in - P_out, floored at 0 for capped observations.
  [[nodiscard]] double loss_w() const noexcept;

  // The PSU's calibrated curve under the paper's assumption: PFE600 shape
  // plus the constant offset that reproduces this observation.
  [[nodiscard]] EfficiencyCurve calibrated_curve() const;
};

// Observations of one router's PSUs, grouped (routers have >= 1 PSU; the
// Switch dataset has two per router for redundancy).
struct RouterPsuGroup {
  std::string router_name;
  std::string router_model;
  std::vector<PsuObservation> psus;

  [[nodiscard]] double total_input_w() const noexcept;
  [[nodiscard]] double total_output_w() const noexcept;
};

// Groups a flat observation list by router name (preserving first-seen
// order).
[[nodiscard]] std::vector<RouterPsuGroup> group_by_router(
    std::vector<PsuObservation> observations);

}  // namespace joules
