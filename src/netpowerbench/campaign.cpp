#include "netpowerbench/campaign.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/manifest.hpp"
#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace joules {
namespace {

const char* span_id(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kBase: return "campaign.base";
    case ExperimentKind::kIdle: return "campaign.idle";
    case ExperimentKind::kPort: return "campaign.port";
    case ExperimentKind::kTrx: return "campaign.trx";
    case ExperimentKind::kSnake: return "campaign.snake";
  }
  return "campaign.unknown";
}

std::string format_exact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string describe(const HistoryEntry& entry) {
  std::string out{to_string(entry.kind)};
  if (entry.kind != ExperimentKind::kBase) {
    out += " " + to_string(entry.profile) + " x" + std::to_string(entry.pairs);
  }
  return out;
}

bool same_experiment(const HistoryEntry& a, const HistoryEntry& b) noexcept {
  return a.kind == b.kind && (a.kind == ExperimentKind::kBase ||
                              (a.profile == b.profile && a.pairs == b.pairs)) &&
         a.offered_rate_bps == b.offered_rate_bps &&
         a.frame_bytes == b.frame_bytes;
}

}  // namespace

Campaign::Campaign(SimulatedRouter& dut, PowerMeter meter,
                   CampaignOptions options)
    : dut_(dut), meter_(std::move(meter)), options_(std::move(options)),
      now_(options_.lab.start_time) {
  if (options_.lab.settle_s < 0 || options_.lab.measure_s <= 0 ||
      options_.lab.repeats < 1) {
    throw std::invalid_argument("Campaign: invalid timing options");
  }
  if (options_.retry_budget < 0) {
    throw std::invalid_argument("Campaign: retry budget must be >= 0");
  }
  dut_.set_ambient_override_c(options_.lab.lab_ambient_c);
  if (!options_.checkpoint_path.empty() &&
      std::filesystem::exists(options_.checkpoint_path)) {
    std::ifstream stream(options_.checkpoint_path);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    replay_log_ = parse_checkpoint(buffer.str());
  }
}

std::size_t Campaign::max_pairs(const ProfileKey& profile) const {
  std::size_t ports = 0;
  for (const PortGroup& group : dut_.spec().ports) {
    if (group.type == profile.port) ports += group.count;
  }
  return ports / 2;
}

void Campaign::configure_pairs(const ProfileKey& profile, std::size_t pairs,
                               InterfaceState first_of_pair,
                               InterfaceState second_of_pair) {
  if (pairs == 0 || pairs > max_pairs(profile)) {
    throw std::invalid_argument("Campaign: pair count out of range");
  }
  dut_.clear_interfaces();
  for (std::size_t i = 0; i < pairs; ++i) {
    dut_.add_interface(profile, first_of_pair);
    dut_.add_interface(profile, second_of_pair);
  }
}

void Campaign::record(const char* name, std::uint64_t delta) {
  if constexpr (obs::kEnabled) {
    if (options_.registry != nullptr && delta > 0) {
      options_.registry->add(name, delta);
    }
  } else {
    (void)name;
    (void)delta;
  }
}

void Campaign::write_manifest() const {
  if constexpr (obs::kEnabled) {
    if (options_.registry == nullptr || options_.manifest_path.empty()) return;
    char config[256];
    std::snprintf(config, sizeof config,
                  "campaign model=%s start=%lld settle=%lld measure=%lld "
                  "period=%lld repeats=%d retry_budget=%d",
                  dut_.spec().model.c_str(),
                  static_cast<long long>(options_.lab.start_time),
                  static_cast<long long>(options_.lab.settle_s),
                  static_cast<long long>(options_.lab.measure_s),
                  static_cast<long long>(options_.lab.sample_period_s),
                  options_.lab.repeats, options_.retry_budget);
    obs::ManifestInfo info;
    info.tool = "campaign";
    info.seed = fault_plan_.has_value() ? fault_plan_->seed() : 0;
    info.config_hash = obs::config_fingerprint(config);
    info.notes = dut_.spec().model;
    obs::write_manifest(options_.manifest_path, info, *options_.registry);
  }
}

std::optional<Measurement> Campaign::try_replay(HistoryEntry& entry) {
  if (replay_cursor_ >= replay_log_.size()) return std::nullopt;
  const HistoryEntry& recorded = replay_log_[replay_cursor_];
  if (!same_experiment(recorded, entry) || recorded.started_at != now_) {
    throw std::runtime_error(
        "Campaign: checkpoint diverges from the requested battery (recorded " +
        describe(recorded) + ", requested " + describe(entry) +
        ") — delete the checkpoint to start over");
  }
  ++replay_cursor_;
  ++stats_.runs_replayed;
  record("campaign.runs_replayed");
  // Restore exactly the state the live run left behind: lab clock and the
  // per-kind window counters the fault plan keys on. The DUT itself is not
  // reconfigured — the next live run configures from scratch anyway.
  entry = recorded;
  now_ = recorded.ended_at;
  window_counters_[static_cast<std::size_t>(recorded.kind)] +=
      recorded.windows_used;
  history_.push_back(recorded);
  return recorded.measurement;
}

Measurement Campaign::run_experiment(HistoryEntry entry,
                                     std::span<const InterfaceLoad> loads) {
  Measurement measurement;
  {
    // Scoped so the experiment's span has closed (duration recorded) before
    // the manifest snapshot reads the registry.
    const obs::Span span(options_.registry, span_id(entry.kind));
    measurement = run_experiment_impl(std::move(entry), loads);
  }
  write_manifest();
  return measurement;
}

Measurement Campaign::run_experiment_impl(HistoryEntry entry,
                                          std::span<const InterfaceLoad> loads) {
  const BenchFaultPlan* plan = fault_plan_.has_value() ? &*fault_plan_ : nullptr;
  std::vector<double> accepted;
  accepted.reserve(static_cast<std::size_t>(
      options_.lab.repeats * options_.lab.measure_s /
      options_.lab.sample_period_s));
  std::size_t rejected = 0;
  int retries_left = options_.retry_budget;
  WindowQuality quality = WindowQuality::kClean;
  entry.windows_used = 0;

  for (int repeat = 0; repeat < options_.lab.repeats; ++repeat) {
    for (;;) {
      now_ += options_.lab.settle_s;
      WindowSample window = sample_window(
          dut_, meter_, plan, entry.kind,
          window_counters_[static_cast<std::size_t>(entry.kind)]++, loads, now_,
          options_.lab.measure_s, options_.lab.sample_period_s, &stats_.faults);
      ++entry.windows_used;
      ++stats_.windows_measured;
      record("campaign.windows_measured");
      now_ = window.end_time;

      WindowValidation validation = validate_window(
          window.samples, window.expected_count, options_.window);
      if (validation.ok()) {
        if (validation.rejected > 0) {
          quality = worst(quality, WindowQuality::kRecovered);
        }
        rejected += validation.rejected;
        stats_.samples_rejected += validation.rejected;
        record("campaign.samples_rejected", validation.rejected);
        accepted.insert(accepted.end(), validation.accepted.begin(),
                        validation.accepted.end());
        if constexpr (obs::kEnabled) {
          if (options_.registry != nullptr) {
            options_.registry->observe(
                "campaign.window_samples",
                static_cast<double>(validation.accepted.size()));
          }
        }
        break;
      }
      // Disturbed window: none of its samples may touch the average.
      rejected += window.samples.size();
      if (retries_left > 0) {
        --retries_left;
        ++stats_.windows_retried;
        record("campaign.windows_retried");
        quality = worst(quality, WindowQuality::kRecovered);
        continue;  // re-measure at fresh lab time
      }
      ++stats_.windows_discarded;
      record("campaign.windows_discarded");
      quality = WindowQuality::kDisturbed;
      break;
    }
  }

  Measurement measurement = measurement_from_samples(accepted);
  measurement.rejected_count = rejected;
  measurement.quality = quality;
  entry.retries = options_.retry_budget - retries_left;
  entry.ended_at = now_;
  entry.measurement = measurement;
  history_.push_back(std::move(entry));
  if (!options_.checkpoint_path.empty()) save_checkpoint();
  return measurement;
}

Measurement Campaign::run_base() {
  HistoryEntry entry;
  entry.kind = ExperimentKind::kBase;
  entry.started_at = now_;
  if (auto replayed = try_replay(entry)) return *replayed;
  dut_.clear_interfaces();
  return run_experiment(std::move(entry), {});
}

Measurement Campaign::run_idle(const ProfileKey& profile, std::size_t pairs) {
  HistoryEntry entry;
  entry.kind = ExperimentKind::kIdle;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.started_at = now_;
  if (auto replayed = try_replay(entry)) return *replayed;
  configure_pairs(profile, pairs, InterfaceState::kPlugged,
                  InterfaceState::kPlugged);
  return run_experiment(std::move(entry), {});
}

Measurement Campaign::run_port(const ProfileKey& profile, std::size_t pairs) {
  HistoryEntry entry;
  entry.kind = ExperimentKind::kPort;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.started_at = now_;
  if (auto replayed = try_replay(entry)) return *replayed;
  configure_pairs(profile, pairs, InterfaceState::kEnabled,
                  InterfaceState::kPlugged);
  return run_experiment(std::move(entry), {});
}

Measurement Campaign::run_trx(const ProfileKey& profile, std::size_t pairs) {
  HistoryEntry entry;
  entry.kind = ExperimentKind::kTrx;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.started_at = now_;
  if (auto replayed = try_replay(entry)) return *replayed;
  configure_pairs(profile, pairs, InterfaceState::kUp, InterfaceState::kUp);
  return run_experiment(std::move(entry), {});
}

SnakePoint Campaign::run_snake(const ProfileKey& profile, std::size_t pairs,
                               const TrafficSpec& spec) {
  const SnakePlan plan = SnakePlan::over_ports(2 * pairs);
  SnakePoint point;
  point.offered_rate_bps = spec.rate_bps;
  point.frame_bytes = spec.frame_bytes;
  point.per_interface_rate_bps = plan.per_interface_rate_bps(spec);
  point.per_interface_rate_pps = plan.per_interface_packet_rate_pps(spec);

  HistoryEntry entry;
  entry.kind = ExperimentKind::kSnake;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.offered_rate_bps = spec.rate_bps;
  entry.frame_bytes = spec.frame_bytes;
  entry.started_at = now_;
  if (auto replayed = try_replay(entry)) {
    point.measurement = *replayed;
    return point;
  }
  configure_pairs(profile, pairs, InterfaceState::kUp, InterfaceState::kUp);
  const std::vector<InterfaceLoad> loads(
      2 * pairs,
      InterfaceLoad{point.per_interface_rate_bps, point.per_interface_rate_pps});
  point.measurement = run_experiment(std::move(entry), loads);
  return point;
}

std::string Campaign::serialize_checkpoint(std::span<const HistoryEntry> history) {
  CsvTable table({"run", "kind", "port", "transceiver", "rate", "pairs",
                  "offered_rate_bps", "frame_bytes", "started_at", "ended_at",
                  "windows_used", "retries", "mean_power_w", "stddev_w",
                  "samples", "rejected", "quality"});
  for (std::size_t i = 0; i < history.size(); ++i) {
    const HistoryEntry& entry = history[i];
    const bool base = entry.kind == ExperimentKind::kBase;
    table.add_row({std::to_string(i), std::string(to_string(entry.kind)),
                   base ? "" : std::string(to_string(entry.profile.port)),
                   base ? "" : std::string(to_string(entry.profile.transceiver)),
                   base ? "" : std::string(to_string(entry.profile.rate)),
                   std::to_string(entry.pairs),
                   format_exact(entry.offered_rate_bps),
                   format_exact(entry.frame_bytes),
                   std::to_string(entry.started_at),
                   std::to_string(entry.ended_at),
                   std::to_string(entry.windows_used),
                   std::to_string(entry.retries),
                   format_exact(entry.measurement.mean_power_w),
                   format_exact(entry.measurement.stddev_w),
                   std::to_string(entry.measurement.sample_count),
                   std::to_string(entry.measurement.rejected_count),
                   std::string(to_string(entry.measurement.quality))});
  }
  return std::string(kCheckpointHeaderPrefix) +
         std::to_string(kCheckpointVersion) + "\n" + table.to_string();
}

std::vector<HistoryEntry> Campaign::parse_checkpoint(const std::string& contents) {
  const std::size_t eol = contents.find('\n');
  if (eol == std::string::npos ||
      !starts_with(contents, kCheckpointHeaderPrefix)) {
    throw std::runtime_error("Campaign: checkpoint missing version header");
  }
  const int version =
      std::stoi(contents.substr(kCheckpointHeaderPrefix.size(),
                                eol - kCheckpointHeaderPrefix.size()));
  if (version > kCheckpointVersion) {
    throw std::runtime_error("Campaign: checkpoint version " +
                             std::to_string(version) +
                             " is newer than this build");
  }
  const CsvTable table = CsvTable::parse(contents.substr(eol + 1));
  std::vector<HistoryEntry> out;
  out.reserve(table.row_count());
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    HistoryEntry entry;
    const auto kind = parse_experiment_kind(table.cell(i, "kind"));
    if (!kind) throw std::runtime_error("Campaign: bad experiment kind");
    entry.kind = *kind;
    if (entry.kind != ExperimentKind::kBase) {
      const auto port = parse_port_type(table.cell(i, "port"));
      const auto trx = parse_transceiver_kind(table.cell(i, "transceiver"));
      const auto rate = parse_line_rate(table.cell(i, "rate"));
      if (!port || !trx || !rate) {
        throw std::runtime_error("Campaign: bad profile key in checkpoint");
      }
      entry.profile = {*port, *trx, *rate};
    }
    entry.pairs = static_cast<std::size_t>(table.cell_int64(i, "pairs"));
    entry.offered_rate_bps = table.cell_double(i, "offered_rate_bps");
    entry.frame_bytes = table.cell_double(i, "frame_bytes");
    entry.started_at = table.cell_int64(i, "started_at");
    entry.ended_at = table.cell_int64(i, "ended_at");
    entry.windows_used =
        static_cast<std::size_t>(table.cell_int64(i, "windows_used"));
    entry.retries = static_cast<int>(table.cell_int64(i, "retries"));
    entry.measurement.mean_power_w = table.cell_double(i, "mean_power_w");
    entry.measurement.stddev_w = table.cell_double(i, "stddev_w");
    entry.measurement.sample_count =
        static_cast<std::size_t>(table.cell_int64(i, "samples"));
    entry.measurement.rejected_count =
        static_cast<std::size_t>(table.cell_int64(i, "rejected"));
    const auto quality = parse_window_quality(table.cell(i, "quality"));
    if (!quality) throw std::runtime_error("Campaign: bad quality flag");
    entry.measurement.quality = *quality;
    out.push_back(entry);
  }
  return out;
}

void Campaign::save_checkpoint() {
  write_file_atomic(options_.checkpoint_path, serialize_checkpoint(history_));
  ++stats_.checkpoints_written;
  record("campaign.checkpoints_written");
}

}  // namespace joules
