#include "netpowerbench/derivation.hpp"

#include <algorithm>
#include <stdexcept>

#include "traffic/generator.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

std::vector<std::size_t> default_ladder(std::size_t max_pairs) {
  // Up to 6 evenly spread pair counts ending at max_pairs.
  std::vector<std::size_t> ladder;
  const std::size_t points = std::min<std::size_t>(6, max_pairs);
  for (std::size_t i = 1; i <= points; ++i) {
    ladder.push_back(std::max<std::size_t>(1, max_pairs * i / points));
  }
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  return ladder;
}

}  // namespace

ProfileDerivation derive_profile(Orchestrator& orchestrator,
                                 const ProfileKey& profile,
                                 double base_power_w,
                                 const DerivationOptions& options) {
  const std::size_t max_pairs = orchestrator.max_pairs(profile);
  if (max_pairs == 0) {
    throw std::invalid_argument("derive_profile: DUT has no ports of this type");
  }
  std::vector<std::size_t> ladder =
      options.pair_ladder.empty() ? default_ladder(max_pairs) : options.pair_ladder;
  if (ladder.size() < 2) {
    throw std::invalid_argument("derive_profile: need >= 2 ladder points");
  }
  for (const std::size_t pairs : ladder) {
    if (pairs == 0 || pairs > max_pairs) {
      throw std::invalid_argument("derive_profile: ladder point out of range");
    }
  }

  ProfileDerivation out;
  out.profile.key = profile;

  // --- P_trx,in from Idle at the largest ladder point (Eq. 8). ---------
  const std::size_t big_n = ladder.back();
  const Measurement idle = orchestrator.run_idle(profile, big_n);
  out.idle_power_w = idle.mean_power_w;
  out.profile.trx_in_power_w =
      (idle.mean_power_w - base_power_w) / (2.0 * static_cast<double>(big_n));

  // --- P_port from the Port ladder (Eq. 9 via regression over N). -------
  std::vector<double> n_values;
  std::vector<double> port_powers;
  for (const std::size_t pairs : ladder) {
    n_values.push_back(static_cast<double>(pairs));
    port_powers.push_back(orchestrator.run_port(profile, pairs).mean_power_w);
  }
  out.port_fit = fit_linear(n_values, port_powers);
  out.profile.port_power_w = out.port_fit.slope;

  // --- P_trx,up from the Trx ladder (Eq. 10). ---------------------------
  // Each pair adds 2 up-interfaces: slope = 2*(P_port + P_trx,up + P_trx,in)
  // ... except the Idle ladder already plugged both transceivers at every N.
  // Here interfaces go from plugged (Port run baseline) to up, and we
  // measure absolute power; the slope over N of P_Trx is
  //   2*P_trx,in + 2*P_port + 2*P_trx,up per pair... Careful bookkeeping:
  // P_Trx(N) = P_base + 2N*P_trx,in + 2N*(P_port + P_trx,up)  [both ports up]
  // P_Port(N) = P_base + 2N*P_trx,in + N*P_port               [one port up]
  // so slope_Trx = 2*P_trx,in + 2*P_port + 2*P_trx,up
  //    slope_Port = 2*P_trx,in + P_port.
  std::vector<double> trx_powers;
  for (const std::size_t pairs : ladder) {
    trx_powers.push_back(orchestrator.run_trx(profile, pairs).mean_power_w);
  }
  out.trx_fit = fit_linear(n_values, trx_powers);
  // Unpick the slopes using the Idle-derived P_trx,in.
  out.profile.port_power_w = out.port_fit.slope - 2.0 * out.profile.trx_in_power_w;
  out.profile.trx_up_power_w =
      (out.trx_fit.slope - 2.0 * out.profile.trx_in_power_w) / 2.0 -
      out.profile.port_power_w;

  // --- Snake sweeps: alpha_L per frame size (Eq. 15/16). -----------------
  const std::vector<double> frame_sizes =
      options.frame_sizes.empty() ? default_frame_sizes() : options.frame_sizes;
  if (options.rate_steps < 2) {
    throw std::invalid_argument("derive_profile: need >= 2 rate steps");
  }
  const double line_rate = line_rate_bps(profile.rate);
  const double trx_power_at_big_n = trx_powers.back();

  std::vector<double> l_values;
  std::vector<double> scaled_alphas;  // alpha_L * 8 * (L + L_header)
  std::vector<double> offsets;        // per-interface P_offset estimates
  std::vector<double> all_bps;        // across every (rate, L) point
  std::vector<double> all_pps;
  std::vector<double> all_powers;
  for (const double frame_bytes : frame_sizes) {
    std::vector<double> aggregate_bps;
    std::vector<double> snake_powers;
    for (int step = 0; step < options.rate_steps; ++step) {
      const double frac =
          options.min_rate_frac +
          (options.max_rate_frac - options.min_rate_frac) * step /
              (options.rate_steps - 1);
      const TrafficSpec spec = make_cbr(frac * line_rate, frame_bytes);
      const SnakePoint point = orchestrator.run_snake(profile, big_n, spec);
      aggregate_bps.push_back(point.per_interface_rate_bps * 2.0 *
                              static_cast<double>(big_n));
      snake_powers.push_back(point.measurement.mean_power_w);
      all_bps.push_back(aggregate_bps.back());
      all_pps.push_back(point.per_interface_rate_pps * 2.0 *
                        static_cast<double>(big_n));
      all_powers.push_back(point.measurement.mean_power_w);
    }
    const LinearFit fit = fit_linear(aggregate_bps, snake_powers);
    out.alpha_fits.emplace(frame_bytes, fit);
    // fit.slope is dP per aggregate bit rate = alpha_L per interface.
    l_values.push_back(frame_bytes);
    scaled_alphas.push_back(fit.slope * kBitsPerByte *
                            (frame_bytes + options.header_bytes));
    // Eq. 18: the intercept minus the no-traffic Trx power, per interface.
    offsets.push_back((fit.intercept - trx_power_at_big_n) /
                      (2.0 * static_cast<double>(big_n)));
  }

  // Both estimators are always computed (the unused one is cheap and useful
  // as a diagnostic); `options.energy_estimator` picks which fills the
  // profile.
  out.energy_fit = fit_linear(l_values, scaled_alphas);
  out.direct_fit = fit_plane(all_bps, all_pps, all_powers);

  if (options.energy_estimator == EnergyEstimator::kDirect) {
    // One-shot OLS: P = E_bit * R_bits + E_pkt * R_pkts + const.
    out.profile.energy_per_bit_j = out.direct_fit.a;
    out.profile.energy_per_packet_j = out.direct_fit.b;
    out.profile.offset_power_w = (out.direct_fit.intercept - trx_power_at_big_n) /
                                 (2.0 * static_cast<double>(big_n));
  } else {
    // --- E_bit and E_pkt from the Eq. 17 regression over L. -------------
    // alpha_L * 8(L + L_hdr) = 8*E_bit*L + (8*E_bit*L_hdr + E_pkt)
    out.profile.energy_per_bit_j = out.energy_fit.slope / kBitsPerByte;
    out.profile.energy_per_packet_j =
        out.energy_fit.intercept - out.energy_fit.slope * options.header_bytes;

    // --- P_offset: average of the per-L estimates (Eq. 18). --------------
    double offset_sum = 0.0;
    for (const double value : offsets) offset_sum += value;
    out.profile.offset_power_w = offset_sum / static_cast<double>(offsets.size());
  }

  return out;
}

DerivedModel derive_power_model(Orchestrator& orchestrator,
                                const std::vector<ProfileKey>& profiles,
                                const DerivationOptions& options) {
  if (profiles.empty()) {
    throw std::invalid_argument("derive_power_model: no profiles requested");
  }
  DerivedModel out;
  out.base_measurement = orchestrator.run_base();
  out.base_power_w = out.base_measurement.mean_power_w;
  out.model.set_base_power_w(out.base_power_w);
  for (const ProfileKey& key : profiles) {
    ProfileDerivation derivation =
        derive_profile(orchestrator, key, out.base_power_w, options);
    out.model.add_profile(derivation.profile);
    out.derivations.push_back(std::move(derivation));
  }
  return out;
}

}  // namespace joules
