#include "netpowerbench/derivation.hpp"

#include <algorithm>
#include <stdexcept>

#include "traffic/generator.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

std::vector<std::size_t> default_ladder(std::size_t max_pairs) {
  // Up to 6 evenly spread pair counts ending at max_pairs.
  std::vector<std::size_t> ladder;
  const std::size_t points = std::min<std::size_t>(6, max_pairs);
  for (std::size_t i = 1; i <= points; ++i) {
    ladder.push_back(std::max<std::size_t>(1, max_pairs * i / points));
  }
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  return ladder;
}

bool usable(const Measurement& measurement) noexcept {
  return measurement.quality != WindowQuality::kDisturbed &&
         measurement.sample_count > 0;
}

}  // namespace

std::string_view to_string(TermConfidence confidence) noexcept {
  switch (confidence) {
    case TermConfidence::kHigh: return "high";
    case TermConfidence::kReduced: return "reduced";
    case TermConfidence::kLow: return "low";
  }
  return "low";
}

TermConfidence worst(TermConfidence a, TermConfidence b) noexcept {
  return a > b ? a : b;
}

TermConfidence confidence_of(WindowQuality quality) noexcept {
  switch (quality) {
    case WindowQuality::kClean: return TermConfidence::kHigh;
    case WindowQuality::kRecovered: return TermConfidence::kReduced;
    case WindowQuality::kDisturbed: return TermConfidence::kLow;
  }
  return TermConfidence::kLow;
}

ProfileDerivation derive_profile(LabBench& bench, const ProfileKey& profile,
                                 double base_power_w,
                                 const DerivationOptions& options) {
  const std::size_t max_pairs = bench.max_pairs(profile);
  if (max_pairs == 0) {
    throw std::invalid_argument("derive_profile: DUT has no ports of this type");
  }
  std::vector<std::size_t> ladder =
      options.pair_ladder.empty() ? default_ladder(max_pairs) : options.pair_ladder;
  if (ladder.size() < 2) {
    throw std::invalid_argument("derive_profile: need >= 2 ladder points");
  }
  for (const std::size_t pairs : ladder) {
    if (pairs == 0 || pairs > max_pairs) {
      throw std::invalid_argument("derive_profile: ladder point out of range");
    }
  }

  ProfileDerivation out;
  out.profile.key = profile;
  ProfileQuality& quality = out.quality;

  // --- P_trx,in from Idle at the largest ladder point (Eq. 8). ---------
  const std::size_t big_n = ladder.back();
  const Measurement idle = bench.run_idle(profile, big_n);
  out.idle_power_w = idle.mean_power_w;
  quality.trx_in = confidence_of(idle.quality);
  if (usable(idle)) {
    out.profile.trx_in_power_w =
        (idle.mean_power_w - base_power_w) / (2.0 * static_cast<double>(big_n));
  } else {
    ++quality.runs_excluded;
    out.profile.trx_in_power_w = 0.0;  // partial model: Eq. 8 not estimable
  }

  // --- P_port from the Port ladder (Eq. 9 via regression over N). -------
  // Disturbed ladder points are dropped; the fit runs over what survived.
  std::vector<double> port_n;
  std::vector<double> port_powers;
  for (const std::size_t pairs : ladder) {
    const Measurement measured = bench.run_port(profile, pairs);
    if (!usable(measured)) {
      ++quality.runs_excluded;
      quality.port = worst(quality.port, TermConfidence::kReduced);
      continue;
    }
    quality.port = worst(quality.port, confidence_of(measured.quality));
    port_n.push_back(static_cast<double>(pairs));
    port_powers.push_back(measured.mean_power_w);
  }
  if (port_n.size() >= 2) {
    out.port_fit = fit_linear(port_n, port_powers);
    out.profile.port_power_w = out.port_fit.slope;
  } else {
    quality.port = TermConfidence::kLow;
    out.profile.port_power_w = 0.0;
  }

  // --- P_trx,up from the Trx ladder (Eq. 10). ---------------------------
  // Each pair adds 2 up-interfaces: slope = 2*(P_port + P_trx,up + P_trx,in)
  // ... except the Idle ladder already plugged both transceivers at every N.
  // Here interfaces go from plugged (Port run baseline) to up, and we
  // measure absolute power; the slope over N of P_Trx is
  //   2*P_trx,in + 2*P_port + 2*P_trx,up per pair... Careful bookkeeping:
  // P_Trx(N) = P_base + 2N*P_trx,in + 2N*(P_port + P_trx,up)  [both ports up]
  // P_Port(N) = P_base + 2N*P_trx,in + N*P_port               [one port up]
  // so slope_Trx = 2*P_trx,in + 2*P_port + 2*P_trx,up
  //    slope_Port = 2*P_trx,in + P_port.
  std::vector<double> trx_n;
  std::vector<double> trx_powers;
  Measurement trx_at_big_n;
  bool have_trx_at_big_n = false;
  for (const std::size_t pairs : ladder) {
    const Measurement measured = bench.run_trx(profile, pairs);
    if (pairs == big_n) {
      trx_at_big_n = measured;
      have_trx_at_big_n = usable(measured);
    }
    if (!usable(measured)) {
      ++quality.runs_excluded;
      quality.trx_up = worst(quality.trx_up, TermConfidence::kReduced);
      continue;
    }
    quality.trx_up = worst(quality.trx_up, confidence_of(measured.quality));
    trx_n.push_back(static_cast<double>(pairs));
    trx_powers.push_back(measured.mean_power_w);
  }
  const bool have_trx_fit = trx_n.size() >= 2;
  if (have_trx_fit) out.trx_fit = fit_linear(trx_n, trx_powers);

  // Unpick the slopes using the Idle-derived P_trx,in. Both unpicked terms
  // inherit the Idle run's trust: a garbage P_trx,in poisons them too, and
  // without it the raw Port slope still carries a 2*P_trx,in bias — degrade
  // rather than ship the bias.
  if (quality.port != TermConfidence::kLow) {
    if (quality.trx_in == TermConfidence::kLow) {
      quality.port = TermConfidence::kLow;
      out.profile.port_power_w = 0.0;
    } else {
      out.profile.port_power_w =
          out.port_fit.slope - 2.0 * out.profile.trx_in_power_w;
      quality.port = worst(quality.port, quality.trx_in);
    }
  }
  if (have_trx_fit && quality.port != TermConfidence::kLow &&
      quality.trx_in != TermConfidence::kLow) {
    out.profile.trx_up_power_w =
        (out.trx_fit.slope - 2.0 * out.profile.trx_in_power_w) / 2.0 -
        out.profile.port_power_w;
    quality.trx_up = worst(quality.trx_up, worst(quality.port, quality.trx_in));
  } else {
    quality.trx_up = TermConfidence::kLow;
    out.profile.trx_up_power_w = 0.0;
  }

  // --- Snake sweeps: alpha_L per frame size (Eq. 15/16). -----------------
  const std::vector<double> frame_sizes =
      options.frame_sizes.empty() ? default_frame_sizes() : options.frame_sizes;
  if (options.rate_steps < 2) {
    throw std::invalid_argument("derive_profile: need >= 2 rate steps");
  }
  const double line_rate = line_rate_bps(profile.rate);
  // Eq. 18 references the no-traffic Trx power at big_n; without a usable
  // measurement of it the per-L offsets are meaningless.
  const double trx_power_at_big_n =
      have_trx_at_big_n ? trx_at_big_n.mean_power_w : 0.0;

  std::vector<double> l_values;
  std::vector<double> scaled_alphas;  // alpha_L * 8 * (L + L_header)
  std::vector<double> offsets;        // per-interface P_offset estimates
  std::vector<double> all_bps;        // across every usable (rate, L) point
  std::vector<double> all_pps;
  std::vector<double> all_powers;
  for (const double frame_bytes : frame_sizes) {
    std::vector<double> aggregate_bps;
    std::vector<double> snake_powers;
    TermConfidence sweep = TermConfidence::kHigh;
    for (int step = 0; step < options.rate_steps; ++step) {
      const double frac =
          options.min_rate_frac +
          (options.max_rate_frac - options.min_rate_frac) * step /
              (options.rate_steps - 1);
      const TrafficSpec spec = make_cbr(frac * line_rate, frame_bytes);
      const SnakePoint point = bench.run_snake(profile, big_n, spec);
      if (!usable(point.measurement)) {
        ++quality.runs_excluded;
        sweep = worst(sweep, TermConfidence::kReduced);
        continue;
      }
      sweep = worst(sweep, confidence_of(point.measurement.quality));
      aggregate_bps.push_back(point.per_interface_rate_bps * 2.0 *
                              static_cast<double>(big_n));
      snake_powers.push_back(point.measurement.mean_power_w);
      all_bps.push_back(aggregate_bps.back());
      all_pps.push_back(point.per_interface_rate_pps * 2.0 *
                        static_cast<double>(big_n));
      all_powers.push_back(point.measurement.mean_power_w);
    }
    if (aggregate_bps.size() < 2) {
      // Too few usable rates for this L: no alpha_L, drop it from Eq. 17.
      quality.energy = worst(quality.energy, TermConfidence::kReduced);
      continue;
    }
    const LinearFit fit = fit_linear(aggregate_bps, snake_powers);
    out.alpha_fits.emplace(frame_bytes, fit);
    quality.energy = worst(quality.energy, sweep);
    // fit.slope is dP per aggregate bit rate = alpha_L per interface.
    l_values.push_back(frame_bytes);
    scaled_alphas.push_back(fit.slope * kBitsPerByte *
                            (frame_bytes + options.header_bytes));
    // Eq. 18: the intercept minus the no-traffic Trx power, per interface.
    offsets.push_back((fit.intercept - trx_power_at_big_n) /
                      (2.0 * static_cast<double>(big_n)));
  }

  // Both estimators are always computed (the unused one is cheap and useful
  // as a diagnostic); `options.energy_estimator` picks which fills the
  // profile.
  const bool have_two_step = l_values.size() >= 2;
  if (have_two_step) out.energy_fit = fit_linear(l_values, scaled_alphas);
  bool have_direct = all_bps.size() >= 3;
  if (have_direct) {
    try {
      out.direct_fit = fit_plane(all_bps, all_pps, all_powers);
    } catch (const std::invalid_argument&) {
      have_direct = false;  // surviving points collapsed onto a line
    }
  }

  const bool direct = options.energy_estimator == EnergyEstimator::kDirect;
  if ((direct && !have_direct) || (!direct && !have_two_step)) {
    quality.energy = TermConfidence::kLow;
    quality.offset = TermConfidence::kLow;
    out.profile.energy_per_bit_j = 0.0;
    out.profile.energy_per_packet_j = 0.0;
    out.profile.offset_power_w = 0.0;
    return out;
  }

  quality.offset = worst(quality.energy, have_trx_at_big_n
                                             ? confidence_of(trx_at_big_n.quality)
                                             : TermConfidence::kLow);
  if (direct) {
    // One-shot OLS: P = E_bit * R_bits + E_pkt * R_pkts + const.
    out.profile.energy_per_bit_j = out.direct_fit.a;
    out.profile.energy_per_packet_j = out.direct_fit.b;
    out.profile.offset_power_w =
        quality.offset == TermConfidence::kLow
            ? 0.0
            : (out.direct_fit.intercept - trx_power_at_big_n) /
                  (2.0 * static_cast<double>(big_n));
  } else {
    // --- E_bit and E_pkt from the Eq. 17 regression over L. -------------
    // alpha_L * 8(L + L_hdr) = 8*E_bit*L + (8*E_bit*L_hdr + E_pkt)
    out.profile.energy_per_bit_j = out.energy_fit.slope / kBitsPerByte;
    out.profile.energy_per_packet_j =
        out.energy_fit.intercept - out.energy_fit.slope * options.header_bytes;

    // --- P_offset: average of the per-L estimates (Eq. 18). --------------
    if (quality.offset == TermConfidence::kLow) {
      out.profile.offset_power_w = 0.0;
    } else {
      double offset_sum = 0.0;
      for (const double value : offsets) offset_sum += value;
      out.profile.offset_power_w =
          offset_sum / static_cast<double>(offsets.size());
    }
  }

  return out;
}

DerivedModel derive_power_model(LabBench& bench,
                                const std::vector<ProfileKey>& profiles,
                                const DerivationOptions& options) {
  if (profiles.empty()) {
    throw std::invalid_argument("derive_power_model: no profiles requested");
  }
  DerivedModel out;
  out.base_measurement = bench.run_base();
  out.base_confidence = confidence_of(out.base_measurement.quality);
  // A disturbed Base run poisons every term that subtracts it; zero it and
  // let the confidence flags say so instead of shipping a garbage model.
  out.base_power_w = out.base_confidence == TermConfidence::kLow
                         ? 0.0
                         : out.base_measurement.mean_power_w;
  out.model.set_base_power_w(out.base_power_w);
  for (const ProfileKey& key : profiles) {
    ProfileDerivation derivation =
        derive_profile(bench, key, out.base_power_w, options);
    if (out.base_confidence == TermConfidence::kLow) {
      derivation.quality.trx_in = TermConfidence::kLow;
      derivation.profile.trx_in_power_w = 0.0;
    } else {
      derivation.quality.trx_in =
          worst(derivation.quality.trx_in, out.base_confidence);
    }
    out.model.add_profile(derivation.profile);
    out.derivations.push_back(std::move(derivation));
  }
  return out;
}

}  // namespace joules
