// Deterministic bench fault injection for NetPowerBench campaigns.
//
// The §5 lab campaigns run for days against real hardware, and the bench
// misbehaves in specific, reproducible ways: the meter drops samples, reads
// NaN, spikes, or latches a stuck value; the DUT reboots, takes an OS update
// that changes the fan policy mid-window, or answers an ambient excursion
// with a fan step. The robustness claims of the campaign layer are only
// testable if tests can script those exact sequences — the same philosophy as
// `net::FaultPlan` for the transport.
//
// A `BenchFaultPlan` schedules faults against *measurement windows*, keyed by
// (experiment kind, zero-based window index counted per kind across the
// bench's lifetime). Fault positions inside a window are fractions of the
// window length, so the same plan scales across lab timing options.
// Probabilistic disturbances draw from a hash of (seed, kind, window), so a
// given (plan, seed) replays the identical fault sequence every run — in any
// execution order.
//
// The plan is consulted by `sample_window`, the one code path both the naive
// `Orchestrator` and the robust `Campaign` sample through: meter corruptions
// pass through the `PowerMeter` fault seam, DUT events arm real state on the
// `SimulatedRouter` (an OS update deliberately outlives its window, exactly
// like the paper's Fig. 8 incident).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "device/router.hpp"
#include "meter/power_meter.hpp"
#include "netpowerbench/experiment.hpp"

namespace joules {

// Everything that can go wrong inside one measurement window. Fractions are
// positions in [0, 1) of the window length; a negative position means "not
// scheduled".
struct WindowFault {
  // Meter-side corruptions (applied to readings through the meter seam):
  double dropout_at_frac = -1.0;  // samples silently missing...
  double dropout_span_frac = 0.0; // ...for this fraction of the window
  double nan_at_frac = -1.0;      // one NaN reading
  double spike_at_frac = -1.0;    // additive spike...
  double spike_w = 0.0;           // ...of this magnitude...
  int spike_samples = 1;          // ...for this many consecutive samples
  double stuck_at_frac = -1.0;    // channel latches its last reading...
  double stuck_span_frac = 0.0;   // ...for this fraction of the window
  // DUT-side events (armed as real router state at window start):
  double reboot_at_frac = -1.0;
  SimTime reboot_duration_s = 0;
  double os_update_at_frac = -1.0;  // fan-policy bump, persists after the window
  double fan_step_at_frac = -1.0;   // ambient excursion -> fan step
  SimTime fan_step_span_s = 0;
  double fan_step_delta_c = 0.0;

  [[nodiscard]] bool any_meter_fault() const noexcept {
    return dropout_at_frac >= 0.0 || nan_at_frac >= 0.0 || spike_at_frac >= 0.0 ||
           stuck_at_frac >= 0.0;
  }
  [[nodiscard]] bool any_dut_event() const noexcept {
    return reboot_at_frac >= 0.0 || os_update_at_frac >= 0.0 ||
           fan_step_at_frac >= 0.0;
  }
};

class BenchFaultPlan {
 public:
  BenchFaultPlan() = default;
  // Seed for the probabilistic disturbances; scripted faults are
  // deterministic regardless.
  explicit BenchFaultPlan(std::uint64_t seed) : seed_(seed) {}

  // --- Scripted faults, keyed by (kind, per-kind window index) -----------
  BenchFaultPlan& meter_dropout(ExperimentKind kind, std::uint64_t window,
                                double at_frac, double span_frac);
  BenchFaultPlan& meter_nan(ExperimentKind kind, std::uint64_t window,
                            double at_frac);
  BenchFaultPlan& meter_spike(ExperimentKind kind, std::uint64_t window,
                              double at_frac, double magnitude_w,
                              int samples = 1);
  BenchFaultPlan& meter_stuck(ExperimentKind kind, std::uint64_t window,
                              double at_frac, double span_frac);
  BenchFaultPlan& dut_reboot(ExperimentKind kind, std::uint64_t window,
                             double at_frac, SimTime duration_s);
  BenchFaultPlan& dut_os_update(ExperimentKind kind, std::uint64_t window,
                                double at_frac);
  BenchFaultPlan& fan_transient(ExperimentKind kind, std::uint64_t window,
                                double at_frac, SimTime span_s, double delta_c);

  // Disturbs each window with the given probability (seeded); the fault type
  // is drawn from {spike, NaN, dropout, stuck, reboot} per window.
  BenchFaultPlan& disturb_randomly(double probability);

  [[nodiscard]] bool empty() const noexcept {
    // joules-lint: allow(float-equality) — 0.0 is the exact "disabled" sentinel
    return scripted_.empty() && disturb_probability_ == 0.0;
  }

  // Resolved faults for one window; nullopt when the window runs clean.
  [[nodiscard]] std::optional<WindowFault> faults_for(
      ExperimentKind kind, std::uint64_t window) const;

  // The disturbance seed (run-manifest provenance).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  WindowFault& slot(ExperimentKind kind, std::uint64_t window);

  std::uint64_t seed_ = 0;
  double disturb_probability_ = 0.0;
  std::map<std::pair<std::uint8_t, std::uint64_t>, WindowFault> scripted_;
};

// Counters the bench keeps while sampling (asserted by tests, surfaced by
// joulesctl).
struct BenchFaultCounters {
  std::size_t windows_faulted = 0;    // windows with any fault armed
  std::size_t meter_faults = 0;       // meter-side corruptions armed
  std::size_t dut_events = 0;         // DUT-side events armed
  std::size_t samples_dropped = 0;    // meter dropout casualties
};

// One measurement window, sampled through the shared naive/robust code path.
struct WindowSample {
  std::vector<double> samples;     // what the meter reported (may hold NaN)
  std::size_t expected_count = 0;  // samples a healthy meter would deliver
  SimTime end_time = 0;            // lab clock after the window
  bool fault_armed = false;
};

// Samples `[begin, begin + measure_s)` every `period_s` from the DUT through
// the meter, consulting `plan` (may be nullptr) for window
// `(kind, window_index)`. With no plan — or no fault scheduled — this is
// bit-identical to the historical Orchestrator sampling loop.
[[nodiscard]] WindowSample sample_window(SimulatedRouter& dut, PowerMeter& meter,
                           const BenchFaultPlan* plan, ExperimentKind kind,
                           std::uint64_t window_index,
                           std::span<const InterfaceLoad> loads, SimTime begin,
                           SimTime measure_s, SimTime period_s,
                           BenchFaultCounters* counters = nullptr);

}  // namespace joules
