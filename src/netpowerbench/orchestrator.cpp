#include "netpowerbench/orchestrator.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/units.hpp"

namespace joules {

CsvTable history_to_csv(std::span<const HistoryEntry> history) {
  CsvTable table({"experiment", "profile", "pairs", "offered_rate_gbps",
                  "frame_bytes", "started_at", "mean_power_w", "stddev_w",
                  "samples", "rejected", "quality", "retries"});
  for (const HistoryEntry& entry : history) {
    table.add_row({std::string(to_string(entry.kind)),
                   entry.kind == ExperimentKind::kBase
                       ? std::string{}
                       : to_string(entry.profile),
                   std::to_string(entry.pairs),
                   format_number(bps_to_gbps(entry.offered_rate_bps), 3),
                   format_number(entry.frame_bytes),
                   format_date_time(entry.started_at),
                   format_number(entry.measurement.mean_power_w, 3),
                   format_number(entry.measurement.stddev_w, 4),
                   std::to_string(entry.measurement.sample_count),
                   std::to_string(entry.measurement.rejected_count),
                   std::string(to_string(entry.measurement.quality)),
                   std::to_string(entry.retries)});
  }
  return table;
}

Orchestrator::Orchestrator(SimulatedRouter& dut, PowerMeter meter,
                           OrchestratorOptions options)
    : dut_(dut), meter_(std::move(meter)), options_(options),
      now_(options.start_time) {
  if (options_.settle_s < 0 || options_.measure_s <= 0 || options_.repeats < 1) {
    throw std::invalid_argument("Orchestrator: invalid timing options");
  }
  dut_.set_ambient_override_c(options_.lab_ambient_c);
}

std::size_t Orchestrator::max_pairs(const ProfileKey& profile) const {
  std::size_t ports = 0;
  for (const PortGroup& group : dut_.spec().ports) {
    if (group.type == profile.port) ports += group.count;
  }
  return ports / 2;
}

void Orchestrator::configure_pairs(const ProfileKey& profile, std::size_t pairs,
                                   InterfaceState first_of_pair,
                                   InterfaceState second_of_pair) {
  if (pairs == 0 || pairs > max_pairs(profile)) {
    throw std::invalid_argument("Orchestrator: pair count out of range");
  }
  dut_.clear_interfaces();
  for (std::size_t i = 0; i < pairs; ++i) {
    dut_.add_interface(profile, first_of_pair);
    dut_.add_interface(profile, second_of_pair);
  }
}

Measurement Orchestrator::measure(ExperimentKind kind,
                                  std::span<const InterfaceLoad> loads) {
  const BenchFaultPlan* plan =
      fault_plan_.has_value() ? &*fault_plan_ : nullptr;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(
      options_.repeats * options_.measure_s / options_.sample_period_s));
  windows_used_ = 0;
  for (int repeat = 0; repeat < options_.repeats; ++repeat) {
    now_ += options_.settle_s;
    WindowSample window = sample_window(
        dut_, meter_, plan, kind,
        window_counters_[static_cast<std::size_t>(kind)]++, loads, now_,
        options_.measure_s, options_.sample_period_s);
    ++windows_used_;
    now_ = window.end_time;
    samples.insert(samples.end(), window.samples.begin(), window.samples.end());
  }
  // The naive bench trusts every delivered sample: NaN readings and spikes
  // flow straight into the average (that is the failure mode the robust
  // Campaign exists to prevent).
  return measurement_from_samples(samples);
}

void Orchestrator::finish_entry(HistoryEntry entry) {
  entry.ended_at = now_;
  entry.windows_used = windows_used_;
  history_.push_back(std::move(entry));
}

Measurement Orchestrator::run_base() {
  dut_.clear_interfaces();
  HistoryEntry entry;
  entry.kind = ExperimentKind::kBase;
  entry.started_at = now_;
  entry.measurement = measure(ExperimentKind::kBase, {});
  finish_entry(entry);
  return entry.measurement;
}

Measurement Orchestrator::run_idle(const ProfileKey& profile, std::size_t pairs) {
  configure_pairs(profile, pairs, InterfaceState::kPlugged,
                  InterfaceState::kPlugged);
  HistoryEntry entry;
  entry.kind = ExperimentKind::kIdle;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.started_at = now_;
  entry.measurement = measure(ExperimentKind::kIdle, {});
  finish_entry(entry);
  return entry.measurement;
}

Measurement Orchestrator::run_port(const ProfileKey& profile, std::size_t pairs) {
  // One port of each cabled pair is enabled; with the peer down the link
  // never comes up, isolating P_port.
  configure_pairs(profile, pairs, InterfaceState::kEnabled,
                  InterfaceState::kPlugged);
  HistoryEntry entry;
  entry.kind = ExperimentKind::kPort;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.started_at = now_;
  entry.measurement = measure(ExperimentKind::kPort, {});
  finish_entry(entry);
  return entry.measurement;
}

Measurement Orchestrator::run_trx(const ProfileKey& profile, std::size_t pairs) {
  // Both ports enabled: the links establish, isolating P_port + P_trx,up.
  configure_pairs(profile, pairs, InterfaceState::kUp, InterfaceState::kUp);
  HistoryEntry entry;
  entry.kind = ExperimentKind::kTrx;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.started_at = now_;
  entry.measurement = measure(ExperimentKind::kTrx, {});
  finish_entry(entry);
  return entry.measurement;
}

SnakePoint Orchestrator::run_snake(const ProfileKey& profile, std::size_t pairs,
                                   const TrafficSpec& spec) {
  configure_pairs(profile, pairs, InterfaceState::kUp, InterfaceState::kUp);
  const SnakePlan plan = SnakePlan::over_ports(2 * pairs);

  SnakePoint point;
  point.offered_rate_bps = spec.rate_bps;
  point.frame_bytes = spec.frame_bytes;
  point.per_interface_rate_bps = plan.per_interface_rate_bps(spec);
  point.per_interface_rate_pps = plan.per_interface_packet_rate_pps(spec);

  const std::vector<InterfaceLoad> loads(
      2 * pairs,
      InterfaceLoad{point.per_interface_rate_bps, point.per_interface_rate_pps});
  HistoryEntry entry;
  entry.kind = ExperimentKind::kSnake;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.offered_rate_bps = spec.rate_bps;
  entry.frame_bytes = spec.frame_bytes;
  entry.started_at = now_;
  point.measurement = measure(ExperimentKind::kSnake, loads);
  entry.measurement = point.measurement;
  finish_entry(entry);
  return point;
}

}  // namespace joules
