#include "netpowerbench/orchestrator.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/units.hpp"

namespace joules {

Orchestrator::Orchestrator(SimulatedRouter& dut, PowerMeter meter,
                           OrchestratorOptions options)
    : dut_(dut), meter_(std::move(meter)), options_(options),
      now_(options.start_time) {
  if (options_.settle_s < 0 || options_.measure_s <= 0 || options_.repeats < 1) {
    throw std::invalid_argument("Orchestrator: invalid timing options");
  }
  dut_.set_ambient_override_c(options_.lab_ambient_c);
}

std::size_t Orchestrator::max_pairs(const ProfileKey& profile) const {
  std::size_t ports = 0;
  for (const PortGroup& group : dut_.spec().ports) {
    if (group.type == profile.port) ports += group.count;
  }
  return ports / 2;
}

void Orchestrator::configure_pairs(const ProfileKey& profile, std::size_t pairs,
                                   InterfaceState first_of_pair,
                                   InterfaceState second_of_pair) {
  if (pairs == 0 || pairs > max_pairs(profile)) {
    throw std::invalid_argument("Orchestrator: pair count out of range");
  }
  dut_.clear_interfaces();
  for (std::size_t i = 0; i < pairs; ++i) {
    dut_.add_interface(profile, first_of_pair);
    dut_.add_interface(profile, second_of_pair);
  }
}

Measurement Orchestrator::measure(std::span<const InterfaceLoad> loads) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(
      options_.repeats * options_.measure_s / options_.sample_period_s));
  for (int repeat = 0; repeat < options_.repeats; ++repeat) {
    now_ += options_.settle_s;
    const SimTime window_end = now_ + options_.measure_s;
    for (; now_ < window_end; now_ += options_.sample_period_s) {
      const double truth = dut_.wall_power_w(now_, loads);
      samples.push_back(meter_.measure_w(0, truth, now_));
    }
  }
  Measurement result;
  result.sample_count = samples.size();
  result.mean_power_w = mean(samples);
  result.stddev_w = stddev(samples);
  return result;
}

Measurement Orchestrator::run_base() {
  dut_.clear_interfaces();
  HistoryEntry entry;
  entry.kind = ExperimentKind::kBase;
  entry.started_at = now_;
  entry.measurement = measure({});
  history_.push_back(entry);
  return entry.measurement;
}

Measurement Orchestrator::run_idle(const ProfileKey& profile, std::size_t pairs) {
  configure_pairs(profile, pairs, InterfaceState::kPlugged,
                  InterfaceState::kPlugged);
  HistoryEntry entry;
  entry.kind = ExperimentKind::kIdle;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.started_at = now_;
  entry.measurement = measure({});
  history_.push_back(entry);
  return entry.measurement;
}

Measurement Orchestrator::run_port(const ProfileKey& profile, std::size_t pairs) {
  // One port of each cabled pair is enabled; with the peer down the link
  // never comes up, isolating P_port.
  configure_pairs(profile, pairs, InterfaceState::kEnabled,
                  InterfaceState::kPlugged);
  HistoryEntry entry;
  entry.kind = ExperimentKind::kPort;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.started_at = now_;
  entry.measurement = measure({});
  history_.push_back(entry);
  return entry.measurement;
}

Measurement Orchestrator::run_trx(const ProfileKey& profile, std::size_t pairs) {
  // Both ports enabled: the links establish, isolating P_port + P_trx,up.
  configure_pairs(profile, pairs, InterfaceState::kUp, InterfaceState::kUp);
  HistoryEntry entry;
  entry.kind = ExperimentKind::kTrx;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.started_at = now_;
  entry.measurement = measure({});
  history_.push_back(entry);
  return entry.measurement;
}

SnakePoint Orchestrator::run_snake(const ProfileKey& profile, std::size_t pairs,
                                   const TrafficSpec& spec) {
  configure_pairs(profile, pairs, InterfaceState::kUp, InterfaceState::kUp);
  const SnakePlan plan = SnakePlan::over_ports(2 * pairs);

  SnakePoint point;
  point.offered_rate_bps = spec.rate_bps;
  point.frame_bytes = spec.frame_bytes;
  point.per_interface_rate_bps = plan.per_interface_rate_bps(spec);
  point.per_interface_rate_pps = plan.per_interface_packet_rate_pps(spec);

  const std::vector<InterfaceLoad> loads(
      2 * pairs,
      InterfaceLoad{point.per_interface_rate_bps, point.per_interface_rate_pps});
  HistoryEntry entry;
  entry.kind = ExperimentKind::kSnake;
  entry.profile = profile;
  entry.pairs = pairs;
  entry.offered_rate_bps = spec.rate_bps;
  entry.frame_bytes = spec.frame_bytes;
  entry.started_at = now_;
  point.measurement = measure(loads);
  entry.measurement = point.measurement;
  history_.push_back(entry);
  return point;
}

CsvTable Orchestrator::history_csv() const {
  CsvTable table({"experiment", "profile", "pairs", "offered_rate_gbps",
                  "frame_bytes", "started_at", "mean_power_w", "stddev_w",
                  "samples"});
  for (const HistoryEntry& entry : history_) {
    table.add_row({std::string(to_string(entry.kind)),
                   entry.kind == ExperimentKind::kBase
                       ? std::string{}
                       : to_string(entry.profile),
                   std::to_string(entry.pairs),
                   format_number(bps_to_gbps(entry.offered_rate_bps), 3),
                   format_number(entry.frame_bytes),
                   format_date_time(entry.started_at),
                   format_number(entry.measurement.mean_power_w, 3),
                   format_number(entry.measurement.stddev_w, 4),
                   std::to_string(entry.measurement.sample_count)});
  }
  return table;
}

}  // namespace joules
