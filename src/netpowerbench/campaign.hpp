// Fault-tolerant measurement campaigns for NetPowerBench.
//
// The §5 lab campaigns run for days; the plain `Orchestrator` assumes every
// sample is clean and every run completes. `Campaign` is the hardened bench:
//
//   * Window validation — every measurement window passes the robust gates
//     (stats/robust.hpp): MAD outlier rejection for meter spikes and NaNs, a
//     split-window steadiness check for reboots / OS updates / fan steps, a
//     dropout fraction gate, and stuck-channel detection.
//   * Bounded retries — a disturbed window is re-measured (fresh lab time) up
//     to `retry_budget` extra windows per experiment; what stays dirty is
//     excluded and the run is marked `WindowQuality::kDisturbed` instead of
//     averaging garbage.
//   * Crash-safe checkpoint/resume — every completed run is appended to a
//     versioned checkpoint written via util::write_file_atomic. A campaign
//     killed mid-run reconstructs from the checkpoint: completed runs replay
//     exactly (measurement, lab clock, and fault-plan window counters), then
//     execution continues live. No run is duplicated or lost.
//
// With an empty fault plan and no disturbances, a Campaign is bit-identical
// to the Orchestrator: both sample through `sample_window` with the same
// clock arithmetic, and the robust gates accept every clean window whole.
#pragma once

#include <array>
#include <cstddef>
#include <filesystem>
#include <optional>
#include <vector>

#include "device/router.hpp"
#include "meter/power_meter.hpp"
#include "netpowerbench/bench.hpp"
#include "netpowerbench/bench_fault.hpp"
#include "netpowerbench/orchestrator.hpp"
#include "obs/registry.hpp"
#include "stats/robust.hpp"
#include "util/csv.hpp"

namespace joules {

struct CampaignOptions {
  OrchestratorOptions lab;      // same timing knobs as the naive bench
  RobustWindowOptions window;   // validation thresholds
  int retry_budget = 2;         // extra windows per experiment, total
  // Checkpoint file; empty disables persistence. If the file exists when the
  // Campaign is constructed, the campaign resumes from it.
  std::filesystem::path checkpoint_path;
  // Observability (optional, inert with JOULES_OBS=OFF). A campaign is
  // single-threaded by design — it owns no mutexes, so the thread-safety
  // annotation audit (util/thread_annotations.hpp) has nothing to mark
  // here; the Registry it points at carries its own locking contract.
  // All counters land in shard 0: campaign.* counters
  // mirror CampaignStats, the campaign.window_samples histogram tracks
  // accepted samples per window, and each experiment runs under a
  // campaign.<kind> span. With `manifest_path` set, every completed
  // experiment refreshes the run manifest there (atomic write, so a killed
  // battery leaves the manifest of its last finished run).
  obs::Registry* registry = nullptr;
  std::filesystem::path manifest_path{};
};

struct CampaignStats {
  std::size_t windows_measured = 0;   // windows sampled live (retries incl.)
  std::size_t windows_retried = 0;    // disturbed windows re-measured
  std::size_t windows_discarded = 0;  // windows dirty after the budget
  std::size_t samples_rejected = 0;   // per-sample rejections in kept windows
  std::size_t runs_replayed = 0;      // runs restored from the checkpoint
  std::size_t checkpoints_written = 0;
  BenchFaultCounters faults;          // what the fault plan actually injected
};

class Campaign : public LabBench {
 public:
  // The checkpoint format version this build reads and writes.
  static constexpr int kCheckpointVersion = 1;
  static constexpr std::string_view kCheckpointHeaderPrefix =
      "# netpowerbench-campaign v";

  // Throws std::runtime_error if `options.checkpoint_path` exists but cannot
  // be parsed (torn files cannot happen — writes are atomic — so a parse
  // failure means a version from the future or a foreign file).
  Campaign(SimulatedRouter& dut, PowerMeter meter, CampaignOptions options = {});

  // Installs the bench fault plan (deterministic, seeded). Must be set before
  // the first run for replayed window counters to line up.
  void set_fault_plan(BenchFaultPlan plan) { fault_plan_ = std::move(plan); }

  [[nodiscard]] Measurement run_base() override;
  [[nodiscard]] Measurement run_idle(const ProfileKey& profile,
                                     std::size_t pairs) override;
  [[nodiscard]] Measurement run_port(const ProfileKey& profile,
                                     std::size_t pairs) override;
  [[nodiscard]] Measurement run_trx(const ProfileKey& profile,
                                    std::size_t pairs) override;
  [[nodiscard]] SnakePoint run_snake(const ProfileKey& profile, std::size_t pairs,
                                     const TrafficSpec& spec) override;
  [[nodiscard]] std::size_t max_pairs(const ProfileKey& profile) const override;

  [[nodiscard]] const std::vector<HistoryEntry>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] CsvTable history_csv() const { return history_to_csv(history_); }
  [[nodiscard]] const CampaignStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CampaignOptions& options() const noexcept { return options_; }
  [[nodiscard]] SimTime lab_time() const noexcept { return now_; }
  // Completed runs still pending replay (non-zero only mid-resume).
  [[nodiscard]] std::size_t pending_replays() const noexcept {
    return replay_log_.size() - replay_cursor_;
  }

  // Checkpoint codec, exposed for tests and tooling. `serialize_checkpoint`
  // produces the exact bytes `save_checkpoint` writes; `parse_checkpoint`
  // round-trips them (exact doubles via %.17g, exact int64 times).
  [[nodiscard]] static std::string serialize_checkpoint(
      std::span<const HistoryEntry> history);
  [[nodiscard]] static std::vector<HistoryEntry> parse_checkpoint(
      const std::string& contents);

  // Writes the run manifest now (no-op without options.manifest_path or a
  // registry). run_experiment calls this after every completed run; batteries
  // may call it once more after their last run for a final snapshot.
  void write_manifest() const;

 private:
  void record(const char* name, std::uint64_t delta = 1);
  void configure_pairs(const ProfileKey& profile, std::size_t pairs,
                       InterfaceState first_of_pair, InterfaceState second_of_pair);
  [[nodiscard]] Measurement run_experiment(HistoryEntry entry,
                                           std::span<const InterfaceLoad> loads);
  [[nodiscard]] Measurement run_experiment_impl(
      HistoryEntry entry, std::span<const InterfaceLoad> loads);
  [[nodiscard]] std::optional<Measurement> try_replay(HistoryEntry& entry);
  void save_checkpoint();

  SimulatedRouter& dut_;
  PowerMeter meter_;
  CampaignOptions options_;
  SimTime now_;
  std::vector<HistoryEntry> history_;
  std::vector<HistoryEntry> replay_log_;
  std::size_t replay_cursor_ = 0;
  std::optional<BenchFaultPlan> fault_plan_;
  std::array<std::uint64_t, kExperimentKindCount> window_counters_{};
  CampaignStats stats_;
};

}  // namespace joules
