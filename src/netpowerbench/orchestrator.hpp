// The lab orchestrator (§5.1).
//
// Plays the role of the paper's Intel NUC: configures the DUT over its
// "console" (the SimulatedRouter API), drives the power meter, and generates
// test traffic. Each experiment configures interfaces, waits a settle time,
// then records the meter channel for a measurement window and averages it.
// The lab clock advances monotonically across runs, so slow environmental
// jitter decorrelates between runs like it would on a real bench.
//
// The orchestrator is the *naive* bench: it trusts every sample and completes
// every run, which is exactly how a disturbed window poisons a regression. A
// `BenchFaultPlan` can be installed so tests can show that poisoning; the
// fault-tolerant counterpart is `Campaign` (campaign.hpp), which shares this
// class's sampling code path bit for bit.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <vector>

#include "device/router.hpp"
#include "meter/power_meter.hpp"
#include "netpowerbench/bench.hpp"
#include "netpowerbench/bench_fault.hpp"
#include "netpowerbench/experiment.hpp"
#include "util/csv.hpp"
#include "traffic/generator.hpp"
#include "traffic/snake.hpp"

namespace joules {

struct OrchestratorOptions {
  SimTime start_time = 0;       // lab epoch
  SimTime settle_s = 60;        // wait after reconfiguration
  SimTime measure_s = 1800;     // measurement window per run
  SimTime sample_period_s = 1;  // meter sampling during the window
  int repeats = 3;              // windows averaged per experiment
  double lab_ambient_c = 22.0;  // bench room temperature
};

// CSV export of a lab notebook, shared by Orchestrator and Campaign.
[[nodiscard]] CsvTable history_to_csv(std::span<const HistoryEntry> history);

class Orchestrator : public LabBench {
 public:
  // The orchestrator owns neither DUT nor meter configuration beyond the lab
  // session; the DUT's interface list is cleared between experiments.
  Orchestrator(SimulatedRouter& dut, PowerMeter meter,
               OrchestratorOptions options = {});

  // Bench fault injection (tests/benchmarks): the orchestrator arms the
  // faults but performs no validation — the naive path.
  void set_fault_plan(BenchFaultPlan plan) { fault_plan_ = std::move(plan); }

  [[nodiscard]] Measurement run_base() override;
  [[nodiscard]] Measurement run_idle(const ProfileKey& profile,
                                     std::size_t pairs) override;
  [[nodiscard]] Measurement run_port(const ProfileKey& profile,
                                     std::size_t pairs) override;
  [[nodiscard]] Measurement run_trx(const ProfileKey& profile,
                                    std::size_t pairs) override;
  [[nodiscard]] SnakePoint run_snake(const ProfileKey& profile, std::size_t pairs,
                                     const TrafficSpec& spec) override;

  // Maximum cabled pairs for a profile on this DUT.
  [[nodiscard]] std::size_t max_pairs(const ProfileKey& profile) const override;

  // Lab notebook: one entry per experiment run, in execution order. A
  // replication should be able to audit exactly what the bench did.
  using HistoryEntry = joules::HistoryEntry;
  [[nodiscard]] const std::vector<HistoryEntry>& history() const noexcept {
    return history_;
  }
  // CSV export of the notebook.
  [[nodiscard]] CsvTable history_csv() const { return history_to_csv(history_); }

  [[nodiscard]] const OrchestratorOptions& options() const noexcept { return options_; }
  [[nodiscard]] SimTime lab_time() const noexcept { return now_; }

 private:
  void configure_pairs(const ProfileKey& profile, std::size_t pairs,
                       InterfaceState first_of_pair, InterfaceState second_of_pair);
  [[nodiscard]] Measurement measure(ExperimentKind kind,
                                    std::span<const InterfaceLoad> loads);
  void finish_entry(HistoryEntry entry);

  SimulatedRouter& dut_;
  PowerMeter meter_;
  OrchestratorOptions options_;
  SimTime now_;
  std::vector<HistoryEntry> history_;
  std::optional<BenchFaultPlan> fault_plan_;
  std::array<std::uint64_t, kExperimentKindCount> window_counters_{};
  std::size_t windows_used_ = 0;  // windows consumed by the current run
};

}  // namespace joules
