// The lab orchestrator (§5.1).
//
// Plays the role of the paper's Intel NUC: configures the DUT over its
// "console" (the SimulatedRouter API), drives the power meter, and generates
// test traffic. Each experiment configures interfaces, waits a settle time,
// then records the meter channel for a measurement window and averages it.
// The lab clock advances monotonically across runs, so slow environmental
// jitter decorrelates between runs like it would on a real bench.
#pragma once

#include <cstddef>

#include <vector>

#include "device/router.hpp"
#include "meter/power_meter.hpp"
#include "netpowerbench/experiment.hpp"
#include "util/csv.hpp"
#include "traffic/generator.hpp"
#include "traffic/snake.hpp"

namespace joules {

struct OrchestratorOptions {
  SimTime start_time = 0;       // lab epoch
  SimTime settle_s = 60;        // wait after reconfiguration
  SimTime measure_s = 1800;     // measurement window per run
  SimTime sample_period_s = 1;  // meter sampling during the window
  int repeats = 3;              // windows averaged per experiment
  double lab_ambient_c = 22.0;  // bench room temperature
};

class Orchestrator {
 public:
  // The orchestrator owns neither DUT nor meter configuration beyond the lab
  // session; the DUT's interface list is cleared between experiments.
  Orchestrator(SimulatedRouter& dut, PowerMeter meter,
               OrchestratorOptions options = {});

  // Base: no transceivers, no configuration.
  [[nodiscard]] Measurement run_base();

  // Idle/Port/Trx with `pairs` cabled port pairs of the given profile.
  [[nodiscard]] Measurement run_idle(const ProfileKey& profile, std::size_t pairs);
  [[nodiscard]] Measurement run_port(const ProfileKey& profile, std::size_t pairs);
  [[nodiscard]] Measurement run_trx(const ProfileKey& profile, std::size_t pairs);

  // Snake over 2*pairs interfaces at the given offered load.
  [[nodiscard]] SnakePoint run_snake(const ProfileKey& profile, std::size_t pairs,
                                     const TrafficSpec& spec);

  // Maximum cabled pairs for a profile on this DUT.
  [[nodiscard]] std::size_t max_pairs(const ProfileKey& profile) const;

  // Lab notebook: one entry per experiment run, in execution order. A
  // replication should be able to audit exactly what the bench did.
  struct HistoryEntry {
    ExperimentKind kind = ExperimentKind::kBase;
    ProfileKey profile;          // meaningless for kBase
    std::size_t pairs = 0;       // 0 for kBase
    double offered_rate_bps = 0; // Snake only
    double frame_bytes = 0;      // Snake only
    SimTime started_at = 0;
    Measurement measurement;
  };
  [[nodiscard]] const std::vector<HistoryEntry>& history() const noexcept {
    return history_;
  }
  // CSV export of the notebook.
  [[nodiscard]] CsvTable history_csv() const;

  [[nodiscard]] const OrchestratorOptions& options() const noexcept { return options_; }
  [[nodiscard]] SimTime lab_time() const noexcept { return now_; }

 private:
  void configure_pairs(const ProfileKey& profile, std::size_t pairs,
                       InterfaceState first_of_pair, InterfaceState second_of_pair);
  [[nodiscard]] Measurement measure(std::span<const InterfaceLoad> loads);

  SimulatedRouter& dut_;
  PowerMeter meter_;
  OrchestratorOptions options_;
  SimTime now_;
  std::vector<HistoryEntry> history_;
};

}  // namespace joules
