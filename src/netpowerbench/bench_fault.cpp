#include "netpowerbench/bench_fault.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

namespace joules {
namespace {

// SplitMix64-style avalanche, the same construction the simulators use for
// per-(seed, index) determinism independent of call order.
std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double hash_unit(std::uint64_t seed, ExperimentKind kind,
                 std::uint64_t window, std::uint64_t salt) noexcept {
  const std::uint64_t z =
      mix(seed ^ salt ^ (static_cast<std::uint64_t>(kind) + 1) * 0x9e3779b97f4a7c15ULL ^
          mix(window * 0xd1342543de82ef95ULL + 1));
  return static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
}

void require_frac(double value, const char* what) {
  if (value < 0.0 || value >= 1.0) {
    throw std::invalid_argument(std::string("BenchFaultPlan: ") + what +
                                " must be in [0, 1)");
  }
}

}  // namespace

WindowFault& BenchFaultPlan::slot(ExperimentKind kind, std::uint64_t window) {
  return scripted_[{static_cast<std::uint8_t>(kind), window}];
}

BenchFaultPlan& BenchFaultPlan::meter_dropout(ExperimentKind kind,
                                              std::uint64_t window,
                                              double at_frac, double span_frac) {
  require_frac(at_frac, "dropout position");
  if (span_frac <= 0.0) {
    throw std::invalid_argument("BenchFaultPlan: dropout span must be > 0");
  }
  WindowFault& fault = slot(kind, window);
  fault.dropout_at_frac = at_frac;
  fault.dropout_span_frac = span_frac;
  return *this;
}

BenchFaultPlan& BenchFaultPlan::meter_nan(ExperimentKind kind,
                                          std::uint64_t window, double at_frac) {
  require_frac(at_frac, "NaN position");
  slot(kind, window).nan_at_frac = at_frac;
  return *this;
}

BenchFaultPlan& BenchFaultPlan::meter_spike(ExperimentKind kind,
                                            std::uint64_t window, double at_frac,
                                            double magnitude_w, int samples) {
  require_frac(at_frac, "spike position");
  if (samples < 1) {
    throw std::invalid_argument("BenchFaultPlan: spike needs >= 1 sample");
  }
  WindowFault& fault = slot(kind, window);
  fault.spike_at_frac = at_frac;
  fault.spike_w = magnitude_w;
  fault.spike_samples = samples;
  return *this;
}

BenchFaultPlan& BenchFaultPlan::meter_stuck(ExperimentKind kind,
                                            std::uint64_t window, double at_frac,
                                            double span_frac) {
  require_frac(at_frac, "stuck position");
  if (span_frac <= 0.0) {
    throw std::invalid_argument("BenchFaultPlan: stuck span must be > 0");
  }
  WindowFault& fault = slot(kind, window);
  fault.stuck_at_frac = at_frac;
  fault.stuck_span_frac = span_frac;
  return *this;
}

BenchFaultPlan& BenchFaultPlan::dut_reboot(ExperimentKind kind,
                                           std::uint64_t window, double at_frac,
                                           SimTime duration_s) {
  require_frac(at_frac, "reboot position");
  if (duration_s <= 0) {
    throw std::invalid_argument("BenchFaultPlan: reboot duration must be > 0");
  }
  WindowFault& fault = slot(kind, window);
  fault.reboot_at_frac = at_frac;
  fault.reboot_duration_s = duration_s;
  return *this;
}

BenchFaultPlan& BenchFaultPlan::dut_os_update(ExperimentKind kind,
                                              std::uint64_t window,
                                              double at_frac) {
  require_frac(at_frac, "OS-update position");
  slot(kind, window).os_update_at_frac = at_frac;
  return *this;
}

BenchFaultPlan& BenchFaultPlan::fan_transient(ExperimentKind kind,
                                              std::uint64_t window,
                                              double at_frac, SimTime span_s,
                                              double delta_c) {
  require_frac(at_frac, "fan-transient position");
  if (span_s <= 0) {
    throw std::invalid_argument("BenchFaultPlan: fan-transient span must be > 0");
  }
  WindowFault& fault = slot(kind, window);
  fault.fan_step_at_frac = at_frac;
  fault.fan_step_span_s = span_s;
  fault.fan_step_delta_c = delta_c;
  return *this;
}

BenchFaultPlan& BenchFaultPlan::disturb_randomly(double probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument(
        "BenchFaultPlan: disturb probability outside [0, 1]");
  }
  disturb_probability_ = probability;
  return *this;
}

std::optional<WindowFault> BenchFaultPlan::faults_for(
    ExperimentKind kind, std::uint64_t window) const {
  std::optional<WindowFault> out;
  const auto it = scripted_.find({static_cast<std::uint8_t>(kind), window});
  if (it != scripted_.end()) out = it->second;

  if (disturb_probability_ > 0.0 &&
      hash_unit(seed_, kind, window, 0xD1) < disturb_probability_) {
    if (!out) out.emplace();
    const double at = 0.1 + 0.8 * hash_unit(seed_, kind, window, 0xD2);
    switch (static_cast<int>(5.0 * hash_unit(seed_, kind, window, 0xD3))) {
      case 0:
        out->spike_at_frac = at;
        out->spike_w = 150.0 + 400.0 * hash_unit(seed_, kind, window, 0xD4);
        out->spike_samples = 1 + static_cast<int>(
            6.0 * hash_unit(seed_, kind, window, 0xD5));
        break;
      case 1:
        out->nan_at_frac = at;
        break;
      case 2:
        out->dropout_at_frac = at;
        out->dropout_span_frac = 0.25 + 0.5 * hash_unit(seed_, kind, window, 0xD6);
        break;
      case 3:
        out->stuck_at_frac = at;
        out->stuck_span_frac = 0.3 + 0.4 * hash_unit(seed_, kind, window, 0xD7);
        break;
      default:
        out->reboot_at_frac = at;
        out->reboot_duration_s = 30;
        break;
    }
  }
  return out;
}

WindowSample sample_window(SimulatedRouter& dut, PowerMeter& meter,
                           const BenchFaultPlan* plan, ExperimentKind kind,
                           std::uint64_t window_index,
                           std::span<const InterfaceLoad> loads, SimTime begin,
                           SimTime measure_s, SimTime period_s,
                           BenchFaultCounters* counters) {
  WindowSample out;
  out.expected_count = static_cast<std::size_t>(
      (measure_s + period_s - 1) / period_s);
  out.samples.reserve(out.expected_count);
  const SimTime window_end = begin + measure_s;

  std::optional<WindowFault> fault;
  if (plan != nullptr) fault = plan->faults_for(kind, window_index);
  const auto at_time = [&](double frac) {
    return begin + static_cast<SimTime>(frac * static_cast<double>(measure_s));
  };

  // Arm DUT events: real router state, so a reboot depresses the truth the
  // meter sees and an OS update persists into every later window.
  SimTime dropout_begin = window_end;
  SimTime dropout_end = window_end;
  SimTime stuck_begin = window_end;
  SimTime stuck_end = window_end;
  if (fault) {
    out.fault_armed = true;
    if (counters != nullptr) {
      ++counters->windows_faulted;
      if (fault->any_meter_fault()) ++counters->meter_faults;
      if (fault->any_dut_event()) ++counters->dut_events;
    }
    if (fault->reboot_at_frac >= 0.0) {
      dut.add_reboot(at_time(fault->reboot_at_frac), fault->reboot_duration_s);
    }
    if (fault->os_update_at_frac >= 0.0) {
      dut.set_os_update_at(at_time(fault->os_update_at_frac));
    }
    if (fault->fan_step_at_frac >= 0.0) {
      dut.add_ambient_transient(at_time(fault->fan_step_at_frac),
                                fault->fan_step_span_s,
                                fault->fan_step_delta_c);
    }
    if (fault->dropout_at_frac >= 0.0) {
      dropout_begin = at_time(fault->dropout_at_frac);
      dropout_end = std::min<SimTime>(
          window_end,
          dropout_begin + static_cast<SimTime>(fault->dropout_span_frac *
                                               static_cast<double>(measure_s)));
    }
    if (fault->stuck_at_frac >= 0.0) {
      stuck_begin = at_time(fault->stuck_at_frac);
      stuck_end = std::min<SimTime>(
          window_end,
          stuck_begin + static_cast<SimTime>(fault->stuck_span_frac *
                                             static_cast<double>(measure_s)));
    }

    // Meter-side corruptions route through the meter's fault seam so every
    // consumer of this meter sees the same glitching instrument.
    if (fault->any_meter_fault()) {
      struct SeamState {
        double last_reading = 0.0;
        bool have_last = false;
        int spike_left = 0;
      };
      auto state = std::make_shared<SeamState>();
      const SimTime nan_at =
          fault->nan_at_frac >= 0.0 ? at_time(fault->nan_at_frac) : window_end;
      const SimTime spike_at =
          fault->spike_at_frac >= 0.0 ? at_time(fault->spike_at_frac) : window_end;
      const WindowFault f = *fault;
      meter.set_fault_transform(
          [state, f, nan_at, spike_at, period_s, stuck_begin, stuck_end,
           window_end](int, SimTime t, double clean) {
            if (t >= stuck_begin && t < stuck_end && state->have_last) {
              return state->last_reading;  // latched channel repeats itself
            }
            double reading = clean;
            if (nan_at < window_end && t >= nan_at && t < nan_at + period_s) {
              reading = std::numeric_limits<double>::quiet_NaN();
            }
            if (t >= spike_at) {
              if (t < spike_at + period_s) state->spike_left = f.spike_samples;
              if (state->spike_left > 0) {
                --state->spike_left;
                reading += f.spike_w;
              }
            }
            state->last_reading = reading;
            state->have_last = true;
            return reading;
          });
    }
  }

  for (SimTime t = begin; t < window_end; t += period_s) {
    if (t >= dropout_begin && t < dropout_end) {
      if (counters != nullptr) ++counters->samples_dropped;
      continue;  // the meter never delivered this sample
    }
    const double truth = dut.wall_power_w(t, loads);
    out.samples.push_back(meter.measure_w(0, truth, t));
  }
  out.end_time = begin + static_cast<SimTime>(out.expected_count) * period_s;
  meter.clear_fault_transform();
  return out;
}

}  // namespace joules
