// The lab-bench surface the derivation pipeline drives.
//
// §5.2's parameter derivation only needs five experiment verbs and the DUT's
// port budget; it does not care whether the bench underneath is the plain
// `Orchestrator` (every sample trusted, every run completes) or the
// fault-tolerant `Campaign` (robust windows, retries, checkpoint/resume).
// `derive_profile`/`derive_power_model` take a `LabBench&`, so the same
// derivation code runs against either — and tests can assert the two agree
// bit-for-bit on a clean bench.
#pragma once

#include <cstddef>

#include "model/interface_profile.hpp"
#include "netpowerbench/experiment.hpp"
#include "traffic/generator.hpp"

namespace joules {

class LabBench {
 public:
  virtual ~LabBench() = default;

  // Base: no transceivers, no configuration.
  [[nodiscard]] virtual Measurement run_base() = 0;
  // Idle/Port/Trx with `pairs` cabled port pairs of the given profile.
  [[nodiscard]] virtual Measurement run_idle(const ProfileKey& profile,
                                             std::size_t pairs) = 0;
  [[nodiscard]] virtual Measurement run_port(const ProfileKey& profile,
                                             std::size_t pairs) = 0;
  [[nodiscard]] virtual Measurement run_trx(const ProfileKey& profile,
                                            std::size_t pairs) = 0;
  // Snake over 2*pairs interfaces at the given offered load.
  [[nodiscard]] virtual SnakePoint run_snake(const ProfileKey& profile,
                                             std::size_t pairs,
                                             const TrafficSpec& spec) = 0;

  // Maximum cabled pairs for a profile on this DUT.
  [[nodiscard]] virtual std::size_t max_pairs(const ProfileKey& profile) const = 0;
};

}  // namespace joules
