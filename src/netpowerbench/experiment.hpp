// The five §5.2 experiment types and their measurement results.
//
//   Base  — DUT on, no transceivers, no configuration     -> P_base
//   Idle  — transceivers plugged, all ports down          -> P_trx,in
//   Port  — one port per cabled pair enabled              -> P_port (regression over N)
//   Trx   — both ports up, links established              -> P_trx,up (regression over N)
//   Snake — RFC 8239 snake carrying swept CBR traffic     -> E_bit, E_pkt, P_offset
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "model/interface_profile.hpp"
#include "util/sim_clock.hpp"

namespace joules {

enum class ExperimentKind : std::uint8_t { kBase, kIdle, kPort, kTrx, kSnake };
inline constexpr std::size_t kExperimentKindCount = 5;

[[nodiscard]] std::string_view to_string(ExperimentKind kind) noexcept;
[[nodiscard]] std::optional<ExperimentKind> parse_experiment_kind(
    std::string_view text);

// How much the robust campaign layer had to intervene to produce a
// measurement. The ordering matters: merging two qualities takes the worst.
enum class WindowQuality : std::uint8_t {
  kClean,      // every window accepted first try, no samples rejected
  kRecovered,  // outliers rejected and/or disturbed windows retried, then OK
  kDisturbed,  // at least one window stayed dirty after the retry budget
};

[[nodiscard]] std::string_view to_string(WindowQuality quality) noexcept;
[[nodiscard]] std::optional<WindowQuality> parse_window_quality(
    std::string_view text);
[[nodiscard]] WindowQuality worst(WindowQuality a, WindowQuality b) noexcept;

// Averaged wall-power measurement for one experiment run.
struct Measurement {
  double mean_power_w = 0.0;
  double stddev_w = 0.0;
  std::size_t sample_count = 0;    // samples the statistics are computed over
  std::size_t rejected_count = 0;  // samples the robust gates threw away
  WindowQuality quality = WindowQuality::kClean;

  friend bool operator==(const Measurement&, const Measurement&) = default;
};

// Folds samples into a Measurement. Degenerate windows are guarded: fewer
// than two samples yield stddev_w = 0 (never NaN), and an empty span yields
// an all-zero measurement rather than throwing — a fully disturbed window
// must degrade, not crash, a campaign.
[[nodiscard]] Measurement measurement_from_samples(std::span<const double> samples);

// One point of a Snake sweep.
struct SnakePoint {
  double offered_rate_bps = 0.0;   // orchestrator-injected rate
  double frame_bytes = 0.0;
  double per_interface_rate_bps = 0.0;  // both directions summed
  double per_interface_rate_pps = 0.0;
  Measurement measurement;
};

// Lab notebook entry: one experiment run, as recorded by the orchestrator's
// history and persisted by the campaign checkpoint. A replication should be
// able to audit exactly what the bench did.
struct HistoryEntry {
  ExperimentKind kind = ExperimentKind::kBase;
  ProfileKey profile;           // meaningless for kBase
  std::size_t pairs = 0;        // 0 for kBase
  double offered_rate_bps = 0;  // Snake only
  double frame_bytes = 0;       // Snake only
  SimTime started_at = 0;
  SimTime ended_at = 0;         // lab clock after the run (checkpoint resume)
  std::size_t windows_used = 0; // measurement windows consumed (retries incl.)
  int retries = 0;              // windows re-measured by the robust layer
  Measurement measurement;
};

}  // namespace joules
