// The five §5.2 experiment types and their measurement results.
//
//   Base  — DUT on, no transceivers, no configuration     -> P_base
//   Idle  — transceivers plugged, all ports down          -> P_trx,in
//   Port  — one port per cabled pair enabled              -> P_port (regression over N)
//   Trx   — both ports up, links established              -> P_trx,up (regression over N)
//   Snake — RFC 8239 snake carrying swept CBR traffic     -> E_bit, E_pkt, P_offset
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace joules {

enum class ExperimentKind : std::uint8_t { kBase, kIdle, kPort, kTrx, kSnake };

[[nodiscard]] std::string_view to_string(ExperimentKind kind) noexcept;

// Averaged wall-power measurement for one experiment run.
struct Measurement {
  double mean_power_w = 0.0;
  double stddev_w = 0.0;
  std::size_t sample_count = 0;
};

// One point of a Snake sweep.
struct SnakePoint {
  double offered_rate_bps = 0.0;   // orchestrator-injected rate
  double frame_bytes = 0.0;
  double per_interface_rate_bps = 0.0;  // both directions summed
  double per_interface_rate_pps = 0.0;
  Measurement measurement;
};

}  // namespace joules
