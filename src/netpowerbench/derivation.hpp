// Model-parameter derivation (§5.2).
//
// Orchestrates the experiment battery against a DUT and turns the
// measurements into the §4 model parameters:
//
//   P_base          = P_Base                                        (Eq. 7)
//   P_trx,in        = (P_Idle - P_Base) / 2N                        (Eq. 8)
//   P_port          = slope of P_Port over N                        (Eq. 9)
//   P_port+P_trx,up = slope of P_Trx over N                         (Eq. 10)
//   alpha_L         = slope of P_Snake over aggregate bit rate,
//                     per interface, for each frame size L          (Eq. 15/16)
//   E_bit, E_pkt    from the regression of alpha_L*8(L+L_hdr)
//                     over L                                        (Eq. 17)
//   P_offset        = (beta_L - P_Trx) / 2N, averaged over L        (Eq. 18)
//
// Note the derived parameters describe *wall* power: conversion losses and
// the lab environment are folded into them, exactly as in the paper — which
// is why deployment predictions are precise but offset.
//
// The battery runs against any `LabBench` — the naive `Orchestrator` or the
// fault-tolerant `Campaign`. Runs flagged `WindowQuality::kDisturbed` are
// excluded from every fit, and each derived term carries a `TermConfidence`:
// if too few usable runs remain for a term, that term is zeroed and marked
// `kLow` (a partial model) rather than fit to garbage.
#pragma once

#include <map>
#include <string_view>
#include <vector>

#include "model/power_model.hpp"
#include "netpowerbench/bench.hpp"
#include "netpowerbench/orchestrator.hpp"
#include "stats/regression.hpp"
#include "util/units.hpp"

namespace joules {

// How E_bit/E_pkt are estimated from the Snake sweep:
//   kTwoStep — the paper's Eq. 15-17 pipeline (per-L slopes, then a
//              regression of alpha_L * 8(L + L_hdr) over L);
//   kDirect  — one two-regressor OLS of power over (aggregate bit rate,
//              aggregate packet rate) across every sweep point.
enum class EnergyEstimator : std::uint8_t { kTwoStep, kDirect };

// Trust in a derived model term, propagated from the measurement quality of
// the runs that fed it:
//   kHigh    — every contributing run was clean;
//   kReduced — some runs were recovered (outliers rejected / windows
//              retried) or some disturbed runs were excluded, but enough
//              usable points remained for the fit;
//   kLow     — too few usable runs: the term is zeroed, not estimated.
enum class TermConfidence : std::uint8_t { kHigh, kReduced, kLow };

[[nodiscard]] std::string_view to_string(TermConfidence confidence) noexcept;
[[nodiscard]] TermConfidence worst(TermConfidence a, TermConfidence b) noexcept;
// kClean -> kHigh, kRecovered -> kReduced, kDisturbed -> kLow.
[[nodiscard]] TermConfidence confidence_of(WindowQuality quality) noexcept;

// Per-term confidence for one profile's derivation.
struct ProfileQuality {
  TermConfidence trx_in = TermConfidence::kHigh;  // Eq. 8
  TermConfidence port = TermConfidence::kHigh;    // Eq. 9
  TermConfidence trx_up = TermConfidence::kHigh;  // Eq. 10
  TermConfidence energy = TermConfidence::kHigh;  // Eq. 15-17 (E_bit/E_pkt)
  TermConfidence offset = TermConfidence::kHigh;  // Eq. 18
  std::size_t runs_excluded = 0;  // disturbed runs dropped from the fits
  [[nodiscard]] TermConfidence overall() const noexcept {
    return worst(worst(worst(trx_in, port), worst(trx_up, energy)), offset);
  }
};

struct DerivationOptions {
  // Pair-count ladder for the Port/Trx regressions; empty = use
  // {1, 2, ..., max_pairs} capped at 6 points spread evenly.
  std::vector<std::size_t> pair_ladder;
  EnergyEstimator energy_estimator = EnergyEstimator::kTwoStep;
  // Frame sizes for the Snake sweep; empty = default_frame_sizes().
  std::vector<double> frame_sizes;
  int rate_steps = 6;           // rates per frame size
  double min_rate_frac = 0.10;  // fraction of the line rate
  double max_rate_frac = 0.90;
  double header_bytes = kEthernetOverheadBytes;  // L_header in Eq. 12/17
};

struct ProfileDerivation {
  InterfaceProfile profile;  // the derived parameters
  ProfileQuality quality;    // per-term trust
  // Diagnostics, for the quality checks the paper discusses:
  double idle_power_w = 0.0;
  LinearFit port_fit;                  // over N
  LinearFit trx_fit;                   // over N
  std::map<double, LinearFit> alpha_fits;  // per frame size, over aggregate bps
  LinearFit energy_fit;                // Eq. 17 regression over L (two-step)
  PlaneFit direct_fit;                 // one-shot OLS (direct estimator)
};

struct DerivedModel {
  PowerModel model;
  double base_power_w = 0.0;
  Measurement base_measurement;
  TermConfidence base_confidence = TermConfidence::kHigh;
  std::vector<ProfileDerivation> derivations;
};

// Runs the full battery for one profile. The base measurement can be shared
// across profiles of the same DUT via `derive_power_model`.
[[nodiscard]] ProfileDerivation derive_profile(LabBench& bench,
                                               const ProfileKey& profile,
                                               double base_power_w,
                                               const DerivationOptions& options = {});

// Full model for a DUT over the given profiles (e.g. DAC at 100/50/25G like
// Table 2a). Runs Base once, then each profile's battery.
[[nodiscard]] DerivedModel derive_power_model(
    LabBench& bench, const std::vector<ProfileKey>& profiles,
    const DerivationOptions& options = {});

}  // namespace joules
