#include "netpowerbench/experiment.hpp"

#include "stats/descriptive.hpp"

namespace joules {

std::string_view to_string(ExperimentKind kind) noexcept {
  switch (kind) {
    case ExperimentKind::kBase: return "Base";
    case ExperimentKind::kIdle: return "Idle";
    case ExperimentKind::kPort: return "Port";
    case ExperimentKind::kTrx: return "Trx";
    case ExperimentKind::kSnake: return "Snake";
  }
  return "unknown";
}

std::optional<ExperimentKind> parse_experiment_kind(std::string_view text) {
  if (text == "Base") return ExperimentKind::kBase;
  if (text == "Idle") return ExperimentKind::kIdle;
  if (text == "Port") return ExperimentKind::kPort;
  if (text == "Trx") return ExperimentKind::kTrx;
  if (text == "Snake") return ExperimentKind::kSnake;
  return std::nullopt;
}

std::string_view to_string(WindowQuality quality) noexcept {
  switch (quality) {
    case WindowQuality::kClean: return "clean";
    case WindowQuality::kRecovered: return "recovered";
    case WindowQuality::kDisturbed: return "disturbed";
  }
  return "unknown";
}

std::optional<WindowQuality> parse_window_quality(std::string_view text) {
  if (text == "clean") return WindowQuality::kClean;
  if (text == "recovered") return WindowQuality::kRecovered;
  if (text == "disturbed") return WindowQuality::kDisturbed;
  return std::nullopt;
}

WindowQuality worst(WindowQuality a, WindowQuality b) noexcept {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

Measurement measurement_from_samples(std::span<const double> samples) {
  Measurement result;
  result.sample_count = samples.size();
  if (samples.empty()) return result;
  result.mean_power_w = mean(samples);
  // One sample has no spread; stats::stddev would agree (variance 0) but the
  // guard is explicit so a degenerate window can never surface NaN.
  result.stddev_w = samples.size() < 2 ? 0.0 : stddev(samples);
  return result;
}

}  // namespace joules
