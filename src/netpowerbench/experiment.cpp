#include "netpowerbench/experiment.hpp"

namespace joules {

std::string_view to_string(ExperimentKind kind) noexcept {
  switch (kind) {
    case ExperimentKind::kBase: return "Base";
    case ExperimentKind::kIdle: return "Idle";
    case ExperimentKind::kPort: return "Port";
    case ExperimentKind::kTrx: return "Trx";
    case ExperimentKind::kSnake: return "Snake";
  }
  return "unknown";
}

}  // namespace joules
