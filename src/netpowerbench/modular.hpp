// P_linecard derivation — the §4.3 extension, measured "similarly as P_trx":
// seat k = 1..K identical cards (no interface configuration), measure wall
// power at each count, and regress over k. The slope is the per-card wall
// power; the intercept recovers the chassis base.
#pragma once

#include <string>

#include "device/modular_router.hpp"
#include "meter/power_meter.hpp"
#include "netpowerbench/experiment.hpp"
#include "stats/regression.hpp"

namespace joules {

struct LinecardDerivationOptions {
  SimTime start_time = 0;
  SimTime settle_s = 60;
  SimTime measure_s = 900;
  SimTime sample_period_s = 1;
  int repeats = 2;
  double lab_ambient_c = 22.0;
};

struct LinecardDerivation {
  std::string card_model;
  double chassis_base_w = 0.0;    // regression intercept (wall)
  double linecard_power_w = 0.0;  // regression slope (wall)
  LinearFit fit;                  // over the card count
  std::vector<Measurement> measurements;  // one per count 0..K
};

// Measures with 0..max_cards seated. The DUT is left empty afterwards.
[[nodiscard]] LinecardDerivation derive_linecard_power(
    SimulatedModularRouter& dut, const PowerMeter& meter,
    const std::string& card_model, int max_cards,
    const LinecardDerivationOptions& options = {});

}  // namespace joules
