#include "netpowerbench/modular.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace joules {

LinecardDerivation derive_linecard_power(SimulatedModularRouter& dut,
                                         const PowerMeter& meter,
                                         const std::string& card_model,
                                         int max_cards,
                                         const LinecardDerivationOptions& options) {
  if (max_cards < 2 || max_cards > dut.spec().slot_count) {
    throw std::invalid_argument(
        "derive_linecard_power: need 2..slot_count cards");
  }
  if (dut.seated_count() != 0) {
    throw std::invalid_argument("derive_linecard_power: start with an empty chassis");
  }
  dut.set_ambient_override_c(options.lab_ambient_c);

  LinecardDerivation out;
  out.card_model = card_model;

  SimTime now = options.start_time;
  std::vector<double> counts;
  std::vector<double> powers;
  std::vector<int> seated_slots;
  for (int k = 0; k <= max_cards; ++k) {
    if (k > 0) seated_slots.push_back(dut.seat_linecard(card_model));
    std::vector<double> samples;
    for (int repeat = 0; repeat < options.repeats; ++repeat) {
      now += options.settle_s;
      const SimTime window_end = now + options.measure_s;
      for (; now < window_end; now += options.sample_period_s) {
        samples.push_back(meter.measure_w(0, dut.wall_power_w(now), now));
      }
    }
    Measurement measurement;
    measurement.sample_count = samples.size();
    measurement.mean_power_w = mean(samples);
    measurement.stddev_w = stddev(samples);
    out.measurements.push_back(measurement);
    counts.push_back(static_cast<double>(k));
    powers.push_back(measurement.mean_power_w);
  }
  for (auto it = seated_slots.rbegin(); it != seated_slots.rend(); ++it) {
    dut.unseat_linecard(*it);
  }

  out.fit = fit_linear(counts, powers);
  out.chassis_base_w = out.fit.intercept;
  out.linecard_power_w = out.fit.slope;
  return out;
}

}  // namespace joules
