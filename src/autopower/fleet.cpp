#include "autopower/fleet.hpp"

#include <poll.h>

#include <cstdio>
#include <optional>
#include <stdexcept>
#include <vector>

#include "autopower/protocol.hpp"
#include "net/framed_conn.hpp"
#include "net/transport.hpp"
#include "util/thread_annotations.hpp"

namespace joules::autopower {
namespace {

enum class Persona : std::uint8_t { kSlowReader, kSilent, kNormal };

enum class UnitPhase : std::uint8_t {
  kIdle,        // no connection; dials when its redial gate opens
  kAwaitHello,  // Hello sent, waiting for the ack
  kUploading,   // one upload in flight, waiting for its ack
  kFlushFlood,  // slow reader: flushing duplicates, reads off
  kDrainAcks,   // slow reader: reading the flood's acks
  kWaitEvict,   // silent: waiting for the server to give up on us
  kHolding,     // finished; connection held open until Hellos resolve
  kDone,
  kShed,
  kFailed,
};

constexpr bool is_terminal(UnitPhase phase) {
  return phase == UnitPhase::kDone || phase == UnitPhase::kShed ||
         phase == UnitPhase::kFailed;
}

struct Unit {
  std::size_t index = 0;
  Persona persona = Persona::kNormal;
  UnitPhase phase = UnitPhase::kIdle;
  std::string id;
  std::optional<net::FramedConn> conn;
  std::uint64_t next_sequence = 0;  // resumes here after a redial
  std::uint64_t acked = 0;          // first-time acks only
  std::size_t flood_queued = 0;
  std::size_t flood_acks = 0;
  int dial_attempts = 0;
  Deadline redial_at = Deadline::never();
};

net::FramedConn::Limits driver_limits() {
  net::FramedConn::Limits limits;
  limits.write_buffer_bytes = 4u * 1024 * 1024;  // room for a whole flood
  return limits;
}

DataUpload make_upload(const Unit& unit, std::uint64_t sequence,
                       std::size_t samples) {
  DataUpload upload;
  upload.unit_id = unit.id;
  upload.channel = 0;
  upload.sequence = sequence;
  upload.samples.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto time = static_cast<SimTime>(sequence * samples + i);
    upload.samples.push_back(
        Sample{time, static_cast<double>(unit.index) + 0.25 * static_cast<double>(i)});
  }
  return upload;
}

class FleetDriver {
 public:
  FleetDriver(const FleetConfig& config) : config_(config) {
    if (config.units == 0) {
      throw std::invalid_argument("run_fleet: units must be positive");
    }
    if (config.server_port == 0) {
      throw std::invalid_argument("run_fleet: server_port required");
    }
    if (config.slow_reader_units + config.silent_units > config.units) {
      throw std::invalid_argument("run_fleet: personas exceed fleet size");
    }
    if (config.slow_reader_units > 0 && config.duplicate_uploads == 0) {
      throw std::invalid_argument("run_fleet: slow readers need duplicates");
    }
    net::ensure_fd_capacity(config.units + 128);
    units_.reserve(config.units);
    for (std::size_t i = 0; i < config.units; ++i) {
      Unit unit;
      unit.index = i;
      unit.id = fleet_unit_id(i);
      if (i < config.slow_reader_units) {
        unit.persona = Persona::kSlowReader;
      } else if (i < config.slow_reader_units + config.silent_units) {
        unit.persona = Persona::kSilent;
      }
      units_.push_back(std::move(unit));
    }
    hellos_expected_ = config.units - config.silent_units;
    holds_released_ = !config.hold_open;
  }

  FleetReport run() {
    const Deadline end = Deadline::after(config_.overall_timeout);
    while (terminal_ < units_.size()) {
      if (end.expired()) {
        report_.timed_out = true;
        break;
      }
      release_holds_if_resolved();
      const bool dials_pending = dial_burst();
      poll_and_service(dials_pending);
      release_holds_if_resolved();
    }
    for (Unit& unit : units_) {
      report_.acked_per_unit[unit.id] = unit.acked;
      report_.acked_batches += unit.acked;
      unit.conn.reset();
    }
    return std::move(report_);
  }

 private:
  void release_holds_if_resolved() {
    if (holds_released_ || hellos_resolved_ < hellos_expected_) return;
    holds_released_ = true;
    for (Unit& unit : units_) {
      if (unit.phase == UnitPhase::kHolding) finish(unit);
    }
  }

  // Starts up to dial_burst connections; true when dialable units remain.
  bool dial_burst() {
    std::size_t started = 0;
    bool pending = false;
    for (Unit& unit : units_) {
      if (unit.phase != UnitPhase::kIdle) continue;
      if (!unit.redial_at.is_never() && !unit.redial_at.expired()) {
        pending = true;  // a redial backoff is still running
        continue;
      }
      if (started >= config_.dial_burst) return true;
      started += 1;
      dial(unit);
    }
    return pending;
  }

  void dial(Unit& unit) {
    const bool redial = unit.dial_attempts > 0;
    unit.dial_attempts += 1;
    try {
      TcpStream stream = TcpStream::connect_loopback(config_.server_port);
      unit.conn.emplace(net::Transport::from_stream(std::move(stream)),
                        driver_limits());
    } catch (const std::exception&) {
      if (unit.dial_attempts >= config_.max_dial_attempts) {
        fail(unit);
      } else {
        unit.redial_at = Deadline::after(Millis{10 * unit.dial_attempts});
      }
      return;
    }
    report_.dialed += 1;
    if (redial) report_.redials += 1;
    if (unit.persona == Persona::kSilent) {
      unit.phase = UnitPhase::kWaitEvict;
      return;
    }
    Hello hello;
    hello.unit_id = unit.id;
    if (!unit.conn->queue_frame(encode(Message{hello}))) {
      lose_connection(unit);
      return;
    }
    unit.phase = UnitPhase::kAwaitHello;
  }

  [[nodiscard]] bool wants_read(const Unit& unit) const {
    switch (unit.phase) {
      case UnitPhase::kAwaitHello:
      case UnitPhase::kUploading:
      case UnitPhase::kDrainAcks:
      case UnitPhase::kWaitEvict:
      case UnitPhase::kHolding:
        return true;
      default:
        return false;  // kFlushFlood reads nothing until fully flushed
    }
  }

  JOULES_REACTOR_CONTEXT void poll_and_service(bool dials_pending) {
    pfds_.clear();
    polled_.clear();
    // Injected recv-delay stalls (FramedConn::read_stalled) hold a parsed
    // frame without the fd ever signaling again; their release is driven by
    // the stall deadline, so they count as pending work, never as idle.
    bool stall_expired = false;
    bool stall_waiting = false;
    for (Unit& unit : units_) {
      if (!unit.conn || is_terminal(unit.phase)) continue;
      if (unit.conn->read_stalled()) {
        if (unit.conn->read_stall_deadline().expired()) {
          stall_expired = true;
        } else {
          stall_waiting = true;
        }
      }
      short events = 0;
      if (wants_read(unit)) events |= POLLIN;
      if (unit.conn->wants_write() || unit.conn->close_after_flush()) {
        events |= POLLOUT;
      }
      if (events == 0) continue;
      pfds_.push_back(pollfd{unit.conn->transport().poll_fd(), events, 0});
      polled_.push_back(&unit);
    }
    if (pfds_.empty()) {
      if (!stall_expired) {
        if (!dials_pending && !stall_waiting) return;
        // Only timers (redial backoff / stall release) to wait on; sleep one
        // short slice via poll.
        pollfd none{-1, 0, 0};
        (void)poll_fds(&none, 1, 5);
        return;
      }
    } else {
      const int timeout_ms = (dials_pending || stall_expired) ? 0 : 20;
      const int rc = poll_fds(pfds_.data(), pfds_.size(), timeout_ms);
      if (rc > 0) {
        for (std::size_t i = 0; i < polled_.size(); ++i) {
          if (pfds_[i].revents == 0) continue;
          service(*polled_[i]);
        }
      }
    }
    if (stall_expired) {
      for (Unit& unit : units_) {
        if (!unit.conn || is_terminal(unit.phase)) continue;
        if (unit.conn->read_stalled() &&
            unit.conn->read_stall_deadline().expired()) {
          service(unit);
        }
      }
    }
  }

  JOULES_REACTOR_CONTEXT void service(Unit& unit) {
    if (!unit.conn || is_terminal(unit.phase)) return;
    if (unit.conn->wants_write() || unit.conn->close_after_flush()) {
      switch (unit.conn->flush_writes()) {
        case net::FramedConn::Status::kError:
        case net::FramedConn::Status::kClosed:
          lose_connection(unit);
          return;
        case net::FramedConn::Status::kOpen:
          break;
      }
    }
    if (unit.phase == UnitPhase::kFlushFlood && !unit.conn->wants_write()) {
      unit.phase = UnitPhase::kDrainAcks;  // flood flushed; now read acks
    }
    if (!wants_read(unit)) return;

    frames_.clear();
    const net::FramedConn::Status status = unit.conn->pump_reads(frames_);
    for (std::vector<std::byte>& payload : frames_) {
      if (is_terminal(unit.phase) || !unit.conn) break;
      Message message;
      try {
        message = decode(payload);
      } catch (const std::exception&) {
        lose_connection(unit);
        return;
      }
      handle(unit, message);
    }
    if (!unit.conn || is_terminal(unit.phase)) return;
    if (status != net::FramedConn::Status::kOpen) lose_connection(unit);
  }

  void handle(Unit& unit, const Message& message) {
    if (const auto* ack = std::get_if<HelloAck>(&message)) {
      if (unit.phase != UnitPhase::kAwaitHello) return;
      hellos_resolved_ += 1;
      if (!ack->accepted) {
        if (ack->retry_after_ms > 0) report_.hints += 1;
        report_.shed += 1;
        set_terminal(unit, UnitPhase::kShed);
        return;
      }
      if (unit.persona == Persona::kSlowReader) {
        start_flood(unit);
      } else if (config_.uploads_per_unit == 0) {
        finish(unit);
      } else {
        send_next_upload(unit);
      }
      return;
    }
    if (const auto* ack = std::get_if<UploadAck>(&message)) {
      if (unit.phase == UnitPhase::kUploading) {
        if (ack->sequence != unit.next_sequence) return;  // stale re-ack
        unit.acked += 1;
        unit.next_sequence += 1;
        if (unit.next_sequence >= config_.uploads_per_unit) {
          finish(unit);
        } else {
          send_next_upload(unit);
        }
      } else if (unit.phase == UnitPhase::kDrainAcks) {
        if (unit.flood_acks == 0) unit.acked += 1;  // dups re-ack, not re-count
        unit.flood_acks += 1;
        if (unit.flood_acks >= unit.flood_queued) finish(unit);
      }
      return;
    }
    // Commands or anything else: not part of the soak conversation.
  }

  void send_next_upload(Unit& unit) {
    const DataUpload upload =
        make_upload(unit, unit.next_sequence, config_.samples_per_upload);
    if (!unit.conn->queue_frame(encode(Message{upload}))) {
      lose_connection(unit);
      return;
    }
    unit.phase = UnitPhase::kUploading;
  }

  void start_flood(Unit& unit) {
    // Duplicates of sequence 0 with no samples: compact on the wire, and
    // idempotent server-side, so the flood sizes the *ack* stream (what
    // backpressure throttles) without bloating stored state.
    unit.flood_queued = config_.duplicate_uploads;
    unit.flood_acks = 0;
    const std::vector<std::byte> frame = encode(Message{make_upload(unit, 0, 0)});
    for (std::size_t i = 0; i < unit.flood_queued; ++i) {
      if (!unit.conn->queue_frame(frame)) {
        lose_connection(unit);
        return;
      }
    }
    unit.phase = UnitPhase::kFlushFlood;
  }

  void finish(Unit& unit) {
    if (config_.hold_open && !holds_released_) {
      unit.phase = UnitPhase::kHolding;
      return;
    }
    report_.completed += 1;
    unit.conn.reset();
    set_terminal(unit, UnitPhase::kDone);
  }

  void fail(Unit& unit) {
    report_.failed += 1;
    set_terminal(unit, UnitPhase::kFailed);
  }

  void lose_connection(Unit& unit) {
    unit.conn.reset();
    if (unit.phase == UnitPhase::kWaitEvict) {
      // Silent units exist to be evicted; the server closing them is the
      // expected outcome, not a failure.
      report_.evicted += 1;
      set_terminal(unit, UnitPhase::kDone);
      return;
    }
    if (unit.phase == UnitPhase::kHolding) {
      // Held connections should outlive the run; a close here means the
      // server config is fighting the scenario. Surface it.
      fail(unit);
      return;
    }
    if (unit.dial_attempts >= config_.max_dial_attempts) {
      fail(unit);
      return;
    }
    // Redial and resume from the last acked sequence — acked batches are
    // durable server-side, so nothing is re-counted and nothing is lost.
    unit.phase = UnitPhase::kIdle;
    unit.flood_queued = 0;
    unit.flood_acks = 0;
    unit.redial_at = Deadline::after(Millis{10 * unit.dial_attempts});
  }

  void set_terminal(Unit& unit, UnitPhase phase) {
    unit.phase = phase;
    unit.conn.reset();
    terminal_ += 1;
  }

  FleetConfig config_;
  std::vector<Unit> units_;
  std::vector<pollfd> pfds_;
  std::vector<Unit*> polled_;
  std::vector<std::vector<std::byte>> frames_;
  FleetReport report_;
  std::size_t hellos_expected_ = 0;
  std::size_t hellos_resolved_ = 0;
  std::size_t terminal_ = 0;
  bool holds_released_ = false;
};

}  // namespace

FleetReport run_fleet(const FleetConfig& config) {
  FleetDriver driver(config);
  return driver.run();
}

std::string fleet_unit_id(std::size_t index) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "unit-%04zu", index);
  return buffer;
}

}  // namespace joules::autopower
