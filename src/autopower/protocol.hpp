// The Autopower wire protocol (§6.1).
//
// Autopower units (Raspberry Pi + power meter) dial OUT to a collection
// server — client-initiated so units work behind NAT — authenticate with a
// Hello, poll the server for control commands (start/stop measurements), and
// upload buffered measurements in acknowledged, sequence-numbered batches so
// that an interrupted upload is retried without data loss or duplication.
//
// Messages are framed (net/framing.hpp) with a one-byte type tag.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/framing.hpp"
#include "util/time_series.hpp"

namespace joules::autopower {

inline constexpr std::uint32_t kProtocolVersion = 1;

enum class MessageType : std::uint8_t {
  kHello = 1,       // client -> server: unit identification
  kHelloAck = 2,    // server -> client
  kPollCommands = 3,  // client -> server: "anything for me?"
  kCommands = 4,    // server -> client: pending control commands
  kDataUpload = 5,  // client -> server: measurement batch
  kUploadAck = 6,   // server -> client: batch accepted
};

struct Hello {
  std::string unit_id;
  std::uint32_t version = kProtocolVersion;
};

struct HelloAck {
  bool accepted = true;
  // When rejected for overload, how long the unit should wait before
  // redialing (0 = no hint). The client's retry backoff takes the max of
  // its own schedule and this hint. Decoders tolerate its absence so older
  // peers' two-byte acks still parse.
  std::uint32_t retry_after_ms = 0;
};

struct PollCommands {
  std::string unit_id;
};

struct Command {
  enum class Kind : std::uint8_t { kStartMeasurement = 1, kStopMeasurement = 2 };
  Kind kind = Kind::kStartMeasurement;
  std::uint8_t channel = 0;
  std::uint32_t period_s = 1;  // only meaningful for start

  friend bool operator==(const Command&, const Command&) = default;
};

struct Commands {
  std::vector<Command> commands;
};

struct DataUpload {
  std::string unit_id;
  std::uint8_t channel = 0;
  std::uint64_t sequence = 0;  // per (unit, channel), monotonically increasing
  std::vector<Sample> samples;
};

struct UploadAck {
  std::uint64_t sequence = 0;
};

using Message = std::variant<Hello, HelloAck, PollCommands, Commands,
                             DataUpload, UploadAck>;

// Serializes any message to a framed payload (type tag + body).
[[nodiscard]] std::vector<std::byte> encode(const Message& message);

// Parses a payload; throws std::runtime_error / std::out_of_range on
// malformed input.
[[nodiscard]] Message decode(std::span<const std::byte> payload);

}  // namespace joules::autopower
