// Fleet soak driver: thousands of lightweight autopower units against one
// collection server, from a single thread.
//
// A full autopower::Client per unit (meter, persistence, blocking I/O) would
// need a thread each — useless for soaking a 5000-unit fleet on a small CI
// runner. FleetDriver instead mirrors the server's reactor on the client
// side: one poll() loop, one nonblocking FramedConn per unit, and a tiny
// per-unit state machine that speaks just enough of the protocol (Hello,
// DataUpload, acks) to exercise the server's robustness layer.
//
// Personas (assigned by unit index, lowest first):
//   - slow readers: flood duplicate uploads of their first sequence and only
//     read the acks after the whole flood is flushed — driving the server's
//     write queue over its high-water mark (backpressure);
//   - silent units: connect and never say Hello — reaped by the server's
//     handshake deadline (eviction);
//   - normal units: Hello, then `uploads_per_unit` acknowledged uploads.
//
// With `hold_open`, units that finished keep their connection open until
// every unit's Hello has been answered; the server's ready count then grows
// monotonically, so with a ceiling C and H helloing units exactly H - C
// Hellos are shed — the interleaving-invariant counts the soak tests and
// bench pin. Units whose connection dies before they finish (fault plans,
// accept drops, torn frames) redial and resume from their last acked
// sequence, so an acknowledged batch is never lost.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/socket.hpp"

namespace joules::autopower {

struct FleetConfig {
  std::uint16_t server_port = 0;
  std::size_t units = 0;

  std::size_t uploads_per_unit = 1;   // acknowledged batches per normal unit
  std::size_t samples_per_upload = 4;

  std::size_t slow_reader_units = 0;  // personas: indices [0, slow)
  std::size_t silent_units = 0;       // personas: indices [slow, slow+silent)
  std::size_t duplicate_uploads = 64;  // flood size per slow reader

  bool hold_open = false;  // hold finished conns until all Hellos resolved

  std::size_t dial_burst = 32;  // new connections started per loop pass
  int max_dial_attempts = 8;    // redials before a unit counts as failed
  Millis overall_timeout{60000};
};

struct FleetReport {
  std::size_t dialed = 0;       // successful connects (incl. redials)
  std::size_t redials = 0;      // connects after a lost connection
  std::size_t completed = 0;    // normal + slow units that finished
  std::size_t shed = 0;         // units whose Hello was refused for overload
  std::size_t hints = 0;        // shed acks carrying a retry-after hint > 0
  std::size_t evicted = 0;      // silent units closed by the server
  std::size_t failed = 0;       // units that exhausted their redial budget
  std::uint64_t acked_batches = 0;  // first-time acks across the fleet
  bool timed_out = false;

  // unit_id -> acknowledged upload count; the zero-lost-acks check compares
  // this against Server::accepted_batches per unit.
  std::map<std::string, std::uint64_t> acked_per_unit;
};

// Runs the whole fleet to completion (or timeout). Blocking; call from a
// test/bench thread, not from the server's reactor.
[[nodiscard]] FleetReport run_fleet(const FleetConfig& config);

// The canonical unit id for index i ("unit-0042"); tests use it to query
// the server about specific personas.
[[nodiscard]] std::string fleet_unit_id(std::size_t index);

}  // namespace joules::autopower
