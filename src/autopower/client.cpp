#include "autopower/client.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/manifest.hpp"
#include "obs/registry.hpp"
#include "util/atomic_file.hpp"
#include "util/csv.hpp"

namespace joules::autopower {
namespace {

constexpr const char* kStateHeaderPrefix = "# autopower-client-state v";
constexpr int kStateVersion = 2;

// Shortest decimal that round-trips the double exactly (17 significant
// digits); the 6-decimal table formatting would corrupt stored readings.
std::string format_exact(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

Client::Client(Options options, PowerMeter meter,
               std::function<double(int, SimTime)> source)
    : options_(std::move(options)),
      meter_(std::move(meter)),
      source_(std::move(source)),
      retry_rng_(options_.retry.seed) {
  if (options_.unit_id.empty()) {
    throw std::invalid_argument("autopower::Client: unit_id required");
  }
  if (options_.upload_batch == 0) {
    throw std::invalid_argument("autopower::Client: upload_batch must be positive");
  }
  if (options_.retry.max_attempts < 1) {
    throw std::invalid_argument("autopower::Client: retry needs >= 1 attempt");
  }
  if (options_.retry.multiplier < 1.0) {
    throw std::invalid_argument("autopower::Client: retry multiplier must be >= 1");
  }
  if (options_.retry.jitter < 0.0 || options_.retry.jitter >= 1.0) {
    throw std::invalid_argument("autopower::Client: retry jitter outside [0, 1)");
  }
}

Client::~Client() = default;

void Client::start_measurement(int channel, SimTime period_s) {
  if (period_s <= 0) {
    throw std::invalid_argument("autopower::Client: period must be positive");
  }
  ChannelState& state = channels_[channel];
  state.measuring = true;
  state.period_s = period_s;
}

void Client::stop_measurement(int channel) {
  const auto it = channels_.find(channel);
  if (it != channels_.end()) it->second.measuring = false;
}

bool Client::is_measuring(int channel) const {
  const auto it = channels_.find(channel);
  return it != channels_.end() && it->second.measuring;
}

void Client::tick(SimTime now) {
  if (now < last_tick_ && last_tick_ != std::numeric_limits<SimTime>::min()) {
    throw std::invalid_argument("autopower::Client: time went backwards");
  }
  last_tick_ = now;
  for (auto& [channel, state] : channels_) {
    if (!state.measuring) continue;
    if (state.last_sample != std::numeric_limits<SimTime>::min() &&
        now - state.last_sample < state.period_s) {
      continue;
    }
    const double reading = meter_.measure_w(channel, source_(channel, now), now);
    state.buffer.push_back(Sample{now, reading});
    state.last_sample = now;
  }
}

void Client::drop_connection() noexcept { stream_.close(); }

bool Client::ensure_connected() {
  if (stream_.valid()) return true;
  try {
    stream_ = TcpStream::connect_loopback(options_.server_port);
    Hello hello;
    hello.unit_id = options_.unit_id;
    write_frame(stream_, encode(Message{hello}));
    const auto reply = read_frame(stream_);
    if (!reply) throw std::runtime_error("server closed during handshake");
    const Message message = decode(*reply);
    const auto* ack = std::get_if<HelloAck>(&message);
    if (ack == nullptr || !ack->accepted) {
      if (ack != nullptr && ack->retry_after_ms > 0) {
        // Overload shed: the server asked us to stay away this long. The
        // next backoff sleep honours it as a floor.
        retry_after_hint_ = Millis{ack->retry_after_ms};
        last_retry_after_hint_ = retry_after_hint_;
      }
      throw std::runtime_error("hello rejected");
    }
    return true;
  } catch (const std::exception&) {
    stream_.close();
    return false;
  }
}

void Client::apply_command(const Command& command) {
  switch (command.kind) {
    case Command::Kind::kStartMeasurement:
      start_measurement(command.channel, command.period_s);
      break;
    case Command::Kind::kStopMeasurement:
      stop_measurement(command.channel);
      break;
  }
}

bool Client::poll_commands() {
  try {
    PollCommands poll;
    poll.unit_id = options_.unit_id;
    write_frame(stream_, encode(Message{poll}));
    const auto reply = read_frame(stream_);
    if (!reply) return false;
    const Message message = decode(*reply);
    const auto* commands = std::get_if<Commands>(&message);
    if (commands == nullptr) return false;
    for (const Command& command : commands->commands) apply_command(command);
    return true;
  } catch (const std::exception&) {
    stream_.close();
    return false;
  }
}

bool Client::upload_buffered() {
  try {
    for (auto& [channel, state] : channels_) {
      while (!state.buffer.empty()) {
        const std::size_t count =
            std::min(options_.upload_batch, state.buffer.size());
        DataUpload upload;
        upload.unit_id = options_.unit_id;
        upload.channel = static_cast<std::uint8_t>(channel);
        upload.sequence = state.next_sequence;
        upload.samples.assign(state.buffer.begin(),
                              state.buffer.begin() + static_cast<long>(count));
        write_frame(stream_, encode(Message{upload}));
        const auto reply = read_frame(stream_);
        if (!reply) return false;
        const Message message = decode(*reply);
        const auto* ack = std::get_if<UploadAck>(&message);
        if (ack == nullptr || ack->sequence != upload.sequence) return false;
        // Acked: the batch is durable server-side; drop it locally.
        state.buffer.erase(state.buffer.begin(),
                           state.buffer.begin() + static_cast<long>(count));
        state.next_sequence += 1;
      }
    }
    return true;
  } catch (const std::exception&) {
    stream_.close();
    return false;
  }
}

bool Client::try_sync_once() {
  if (!ensure_connected()) return false;
  if (!poll_commands()) return false;
  return upload_buffered();
}

Millis Client::backoff_delay(int failure_index) {
  const RetryPolicy& policy = options_.retry;
  double ms = static_cast<double>(policy.initial_backoff.count()) *
              std::pow(policy.multiplier, failure_index);
  ms = std::min(ms, static_cast<double>(policy.max_backoff.count()));
  if (policy.jitter > 0.0) {
    ms *= 1.0 + retry_rng_.uniform(-policy.jitter, policy.jitter);
  }
  Millis delay{static_cast<std::int64_t>(std::llround(std::max(0.0, ms)))};
  // A server retry-after hint floors the next sleep, then is consumed; the
  // schedule itself is untouched (hints never shorten a backoff).
  if (retry_after_hint_ > delay) delay = retry_after_hint_;
  retry_after_hint_ = Millis{0};
  return delay;
}

bool Client::sync() {
  last_backoff_delays_.clear();
  for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      const Millis delay = backoff_delay(attempt - 1);
      last_backoff_delays_.push_back(delay);
      std::this_thread::sleep_for(delay);
    }
    sync_stats_.attempts += 1;
    if (try_sync_once()) {
      gave_up_ = false;
      return true;
    }
    sync_stats_.failures += 1;
    // A half-dead connection is worthless for the retry: reconnect fresh.
    stream_.close();
  }
  gave_up_ = true;
  sync_stats_.give_ups += 1;
  return false;
}

std::size_t Client::buffered_samples() const {
  std::size_t total = 0;
  for (const auto& [channel, state] : channels_) total += state.buffer.size();
  return total;
}

void Client::write_manifest(const std::filesystem::path& path) const {
  // Snapshot registry, same rationale as Server::write_manifest: an explicit
  // admin/recovery action, available regardless of JOULES_OBS.
  obs::Registry registry;
  registry.add("client.sync_attempts", sync_stats_.attempts);
  registry.add("client.sync_failures", sync_stats_.failures);
  registry.add("client.sync_give_ups", sync_stats_.give_ups);
  registry.add("client.buffered_samples", buffered_samples());
  registry.add("client.channels", channels_.size());
  char config[160];
  std::snprintf(config, sizeof config,
                "autopower_client unit=%s port=%u batch=%zu",
                options_.unit_id.c_str(),
                static_cast<unsigned>(options_.server_port),
                options_.upload_batch);
  obs::ManifestInfo info;
  info.tool = "autopower_client";
  info.seed = options_.retry.seed;
  info.config_hash = obs::config_fingerprint(config);
  info.notes = options_.unit_id;
  obs::write_manifest(path, info, registry);
}

void Client::save_state(const std::filesystem::path& path) const {
  CsvTable table({"channel", "measuring", "period_s", "last_sample",
                  "next_sequence", "time", "value"});
  for (const auto& [channel, state] : channels_) {
    // One header-ish row per channel carrying its control state...
    table.add_row({std::to_string(channel), state.measuring ? "1" : "0",
                   std::to_string(state.period_s),
                   std::to_string(state.last_sample),
                   std::to_string(state.next_sequence), "", ""});
    // ...then one row per buffered sample.
    for (const Sample& sample : state.buffer) {
      table.add_row({std::to_string(channel), "", "", "", "",
                     std::to_string(sample.time), format_exact(sample.value)});
    }
  }
  const std::string contents = kStateHeaderPrefix +
                               std::to_string(kStateVersion) + "\n" +
                               table.to_string();
  write_file_atomic(path, contents);
}

void Client::load_state(const std::filesystem::path& path) {
  std::ifstream stream(path);
  if (!stream) {
    throw std::runtime_error("autopower::Client: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  std::string contents = std::move(buffer).str();

  int version = 1;  // headerless files predate the version header
  if (contents.starts_with(kStateHeaderPrefix)) {
    const std::size_t eol = contents.find('\n');
    const std::string header = contents.substr(0, eol);
    version = std::stoi(header.substr(std::string(kStateHeaderPrefix).size()));
    contents = eol == std::string::npos ? std::string() : contents.substr(eol + 1);
  }
  if (version > kStateVersion) {
    throw std::runtime_error("autopower::Client: state file version " +
                             std::to_string(version) + " is newer than this build");
  }

  const CsvTable table = CsvTable::parse(contents);
  channels_.clear();
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    const int channel = static_cast<int>(table.cell_int64(i, "channel"));
    ChannelState& state = channels_[channel];
    if (!table.cell(i, "period_s").empty()) {
      state.measuring = table.cell(i, "measuring") == "1";
      // Exact integer parses: v1 always wrote these as decimal integers too,
      // so both versions take this path (the old double round trip corrupted
      // sequences above 2^53 and the "never sampled" sentinel).
      state.period_s = table.cell_int64(i, "period_s");
      state.last_sample = table.cell_int64(i, "last_sample");
      state.next_sequence =
          static_cast<std::uint64_t>(table.cell_int64(i, "next_sequence"));
    } else {
      state.buffer.push_back(Sample{table.cell_int64(i, "time"),
                                    table.cell_double(i, "value")});
    }
  }
}

}  // namespace joules::autopower
