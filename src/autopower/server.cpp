#include "autopower/server.hpp"

#include <cstdio>
#include <utility>

#include "obs/manifest.hpp"
#include "obs/registry.hpp"

namespace joules::autopower {

Server::Server(std::uint16_t port) : listener_(port), port_(listener_.port()) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Join before closing: accept() polls in 200 ms slices and rechecks
  // running_, so the acceptor exits on its own. Closing the fd from here
  // while the acceptor still polls it would be a data race.
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  std::vector<Connection> connections;
  {
    const std::lock_guard lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (Connection& connection : connections) {
    if (connection.thread.joinable()) connection.thread.join();
  }
}

void Server::enqueue_command(const std::string& unit_id, const Command& command) {
  const std::lock_guard lock(mutex_);
  units_[unit_id].pending_commands.push_back(command);
}

std::vector<std::string> Server::known_units() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(units_.size());
  for (const auto& [unit_id, state] : units_) out.push_back(unit_id);
  return out;
}

TimeSeries Server::measurements(const std::string& unit_id, int channel) const {
  const std::lock_guard lock(mutex_);
  TimeSeries out;
  const auto unit_it = units_.find(unit_id);
  if (unit_it == units_.end()) return out;
  const auto channel_it = unit_it->second.channels.find(channel);
  if (channel_it == unit_it->second.channels.end()) return out;
  for (const auto& [time, value] : channel_it->second.samples) {
    out.push(time, value);
  }
  return out;
}

std::size_t Server::accepted_batches(const std::string& unit_id) const {
  const std::lock_guard lock(mutex_);
  const auto it = units_.find(unit_id);
  return it == units_.end() ? 0 : it->second.accepted_batches;
}

Server::ConnectionStats Server::connection_stats() const {
  ConnectionStats stats;
  stats.accepted = accepted_count_.load();
  stats.rejected = rejected_count_.load();
  stats.dropped = dropped_count_.load();
  stats.reaped = reaped_count_.load();
  {
    const std::lock_guard lock(connections_mutex_);
    for (const Connection& connection : connections_) {
      if (!connection.done->load()) stats.active += 1;
    }
  }
  return stats;
}

void Server::write_manifest(const std::filesystem::path& path) const {
  // A throwaway registry snapshot of the lifecycle counters: the manifest is
  // an explicit admin action, not hot-path instrumentation, so it stays
  // available regardless of JOULES_OBS.
  obs::Registry registry;
  const ConnectionStats stats = connection_stats();
  registry.add("server.connections_accepted", stats.accepted);
  registry.add("server.connections_rejected", stats.rejected);
  registry.add("server.connections_dropped", stats.dropped);
  registry.add("server.threads_reaped", stats.reaped);
  registry.add("server.connections_active", stats.active);
  {
    const std::lock_guard lock(mutex_);
    std::uint64_t batches = 0;
    std::uint64_t samples = 0;
    for (const auto& [unit_id, unit] : units_) {
      batches += unit.accepted_batches;
      for (const auto& [channel, data] : unit.channels) {
        samples += data.samples.size();
      }
    }
    registry.add("server.units_known", units_.size());
    registry.add("server.batches_accepted", batches);
    registry.add("server.samples_stored", samples);
  }
  char config[64];
  std::snprintf(config, sizeof config, "autopower_server port=%u",
                static_cast<unsigned>(port_));
  obs::ManifestInfo info;
  info.tool = "autopower_server";
  info.config_hash = obs::config_fingerprint(config);
  obs::write_manifest(path, info, registry);
}

void Server::reap_finished_connections() {
  const std::lock_guard lock(connections_mutex_);
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if (!it->done->load()) {
      ++it;
      continue;
    }
    it->thread.join();  // instant: the thread already signalled completion
    it = connections_.erase(it);
    reaped_count_.fetch_add(1);
  }
}

void Server::accept_loop() {
  while (running_) {
    reap_finished_connections();
    std::optional<TcpStream> stream = listener_.accept(Millis{200});
    if (!stream) continue;
    accepted_count_.fetch_add(1);
    auto done = std::make_shared<std::atomic<bool>>(false);
    const std::lock_guard lock(connections_mutex_);
    connections_.push_back(Connection{
        std::thread([this, done, s = std::move(*stream)]() mutable {
          serve_connection(std::move(s));
          done->store(true);
        }),
        done});
  }
}

void Server::serve_connection(TcpStream stream) {
  // Set by a successful Hello; until then the connection may not poll or
  // upload, and afterwards every message must carry this exact unit_id.
  std::string unit_id;
  bool authenticated = false;
  try {
    while (running_) {
      // Poll in short slices so stop() never waits behind an idle client,
      // then read the whole frame with a generous timeout (polling first
      // avoids losing sync to a mid-header timeout).
      if (!stream.wait_readable(Millis{250})) continue;
      const auto payload = read_frame(stream, Millis{60000});
      if (!payload) return;  // clean disconnect
      const Message message = decode(*payload);

      if (const auto* hello = std::get_if<Hello>(&message)) {
        HelloAck ack;
        ack.accepted = hello->version == kProtocolVersion;
        if (ack.accepted) {
          authenticated = true;
          unit_id = hello->unit_id;
          const std::lock_guard lock(mutex_);
          units_.try_emplace(unit_id);
        }
        write_frame(stream, encode(ack));
        if (!ack.accepted) {
          rejected_count_.fetch_add(1);
          return;
        }
        continue;
      }

      if (const auto* poll = std::get_if<PollCommands>(&message)) {
        if (!authenticated || poll->unit_id != unit_id) {
          rejected_count_.fetch_add(1);
          return;  // no phantom unit state for unauthenticated peers
        }
        Commands response;
        {
          const std::lock_guard lock(mutex_);
          response.commands.swap(units_[unit_id].pending_commands);
        }
        write_frame(stream, encode(response));
        continue;
      }

      if (const auto* upload = std::get_if<DataUpload>(&message)) {
        if (!authenticated || upload->unit_id != unit_id) {
          rejected_count_.fetch_add(1);
          return;  // drop data claiming another (or no) identity
        }
        {
          const std::lock_guard lock(mutex_);
          UnitState& unit = units_[unit_id];
          ChannelData& channel = unit.channels[upload->channel];
          if (channel.seen_sequences.insert(upload->sequence).second) {
            for (const Sample& sample : upload->samples) {
              channel.samples.insert_or_assign(sample.time, sample.value);
            }
            unit.accepted_batches += 1;
          }
        }
        UploadAck ack;
        ack.sequence = upload->sequence;
        write_frame(stream, encode(ack));
        continue;
      }

      // Server-only message arriving at the server: protocol violation.
      dropped_count_.fetch_add(1);
      return;
    }
  } catch (const std::exception&) {
    // Connection-level failure: drop the connection; the client reconnects
    // and re-uploads (uploads are idempotent).
    dropped_count_.fetch_add(1);
  }
}

}  // namespace joules::autopower
