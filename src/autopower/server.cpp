#include "autopower/server.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cstdio>
#include <utility>
#include <variant>

#include "net/fault.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"

namespace joules::autopower {
namespace {

// Staged writes may hold one full response frame beyond the backpressure
// high-water mark, so queue_frame never fails between pause decisions.
net::FramedConn::Limits conn_limits(const ServerConfig& config) {
  net::FramedConn::Limits limits;
  limits.write_buffer_bytes = config.write_high_water + kMaxFrameBytes + 4;
  return limits;
}

ServerConfig config_for_port(std::uint16_t port) {
  ServerConfig config;
  config.port = port;
  return config;
}

}  // namespace

Server::Server(std::uint16_t port) : Server(config_for_port(port)) {}

Server::Server(const ServerConfig& config)
    : config_(config),
      listener_(config.port, config.listen_backlog),
      port_(listener_.port()),
      shed_rng_(config.shed_seed) {
  const MutexLock lock(join_mutex_);
  reactor_ = std::thread([this] { run(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  // The wakeup pipe bounds stop() latency to one poll slice: the reactor
  // wakes immediately, closes every connection, and exits — it never waits
  // behind a peer's frame or idle deadline.
  running_.store(false, std::memory_order_release);
  wakeup_.notify();
  // Serialized: an explicit stop() racing the destructor (or another stop)
  // must not reach joinable()/join() concurrently — std::thread::join is not
  // safe to race, and the annotation audit flagged exactly that here.
  const MutexLock lock(join_mutex_);
  if (reactor_.joinable()) reactor_.join();
}

void Server::enqueue_command(const std::string& unit_id, const Command& command) {
  const MutexLock lock(mutex_);
  units_[unit_id].pending_commands.push_back(command);
}

std::vector<std::string> Server::known_units() const {
  const MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(units_.size());
  for (const auto& [unit_id, state] : units_) out.push_back(unit_id);
  return out;
}

TimeSeries Server::measurements(const std::string& unit_id, int channel) const {
  const MutexLock lock(mutex_);
  TimeSeries out;
  const auto unit_it = units_.find(unit_id);
  if (unit_it == units_.end()) return out;
  const auto channel_it = unit_it->second.channels.find(channel);
  if (channel_it == unit_it->second.channels.end()) return out;
  for (const auto& [time, value] : channel_it->second.samples) {
    out.push(time, value);
  }
  return out;
}

std::size_t Server::accepted_batches(const std::string& unit_id) const {
  const MutexLock lock(mutex_);
  const auto it = units_.find(unit_id);
  return it == units_.end() ? 0 : it->second.accepted_batches;
}

void Server::adopt_connection(net::Transport transport) {
  {
    const MutexLock lock(adopt_mutex_);
    adopted_.push_back(std::move(transport));
  }
  wakeup_.notify();
}

Server::ConnectionStats Server::connection_stats() const {
  ConnectionStats stats;
  stats.accepted = accepted_count_.load();
  stats.rejected = rejected_count_.load();
  stats.dropped = dropped_count_.load();
  stats.reaped = reaped_count_.load();
  stats.active = active_count_.load();
  stats.shed = shed_count_.load();
  stats.evicted = evicted_count_.load();
  stats.backpressure_stalls = backpressure_stall_count_.load();
  stats.batches_ingested = batches_ingested_count_.load();
  stats.ingest_flushes = ingest_flush_count_.load();
  stats.samples_evicted = samples_evicted_count_.load();
  return stats;
}

void Server::write_manifest(const std::filesystem::path& path) const {
  // A throwaway registry snapshot of the lifecycle counters: the manifest is
  // an explicit admin action, not hot-path instrumentation, so it stays
  // available regardless of JOULES_OBS.
  obs::Registry registry;
  const ConnectionStats stats = connection_stats();
  registry.add("server.connections_accepted", stats.accepted);
  registry.add("server.connections_rejected", stats.rejected);
  registry.add("server.connections_dropped", stats.dropped);
  registry.add("server.threads_reaped", stats.reaped);
  registry.add("server.connections_active", stats.active);
  registry.add("server.connections_shed", stats.shed);
  registry.add("server.connections_evicted", stats.evicted);
  registry.add("server.backpressure_stalls", stats.backpressure_stalls);
  registry.add("server.batches_ingested", stats.batches_ingested);
  registry.add("server.ingest_flushes", stats.ingest_flushes);
  registry.add("server.samples_evicted", stats.samples_evicted);
  {
    const MutexLock lock(mutex_);
    std::uint64_t batches = 0;
    std::uint64_t samples = 0;
    for (const auto& [unit_id, unit] : units_) {
      batches += unit.accepted_batches;
      for (const auto& [channel, data] : unit.channels) {
        samples += data.samples.size();
      }
    }
    registry.add("server.units_known", units_.size());
    registry.add("server.batches_accepted", batches);
    registry.add("server.samples_stored", samples);
  }
  char config[64];
  std::snprintf(config, sizeof config, "autopower_server port=%u",
                static_cast<unsigned>(port_));
  obs::ManifestInfo info;
  info.tool = "autopower_server";
  info.config_hash = obs::config_fingerprint(config);
  obs::write_manifest(path, info, registry);
}

// --- reactor internals ----------------------------------------------------

void Server::mark_closed(Conn& conn) {
  if (conn.closing) return;
  if (conn.phase == Phase::kReady) ready_count_ -= 1;
  conn.closing = true;
  conn.framed.transport().close();
}

void Server::drop_connection(Conn& conn, std::atomic<std::uint64_t>& counter) {
  if (conn.closing) return;
  counter.fetch_add(1);
  mark_closed(conn);
}

void Server::begin_drain(Conn& conn) {
  if (conn.closing || conn.phase == Phase::kDraining) return;
  if (conn.phase == Phase::kReady) ready_count_ -= 1;
  conn.phase = Phase::kDraining;
  conn.phase_deadline = Deadline::after(config_.drain_timeout);
}

bool Server::reads_enabled(const Conn& conn) const {
  if (conn.closing || conn.phase == Phase::kDraining) return false;
  if (conn.read_paused) return false;  // backpressure: peer must drain first
  if (conn.framed.close_after_flush()) return false;
  if (conn.stalled && !conn.read_resume.expired()) return false;
  return true;
}

void Server::update_backpressure(Conn& conn) {
  if (conn.closing) return;
  const std::size_t queued = conn.framed.queued_write_bytes();
  if (!conn.read_paused && queued > config_.write_high_water) {
    conn.read_paused = true;
    backpressure_stall_count_.fetch_add(1);
  } else if (conn.read_paused && queued <= config_.write_low_water) {
    conn.read_paused = false;
  }
}

void Server::adopt_transport(net::Transport transport) {
  accepted_count_.fetch_add(1);
  // The accept-side fault plan may drop the connection outright, tag it for
  // torn server frames, or stall its reads (slow-loris server).
  const auto fault = fault_hooks::on_accept(port_);
  if (fault.drop) {
    dropped_count_.fetch_add(1);
    transport.close();
    return;
  }
  transport.set_accept_token(fault.token);
  auto conn = std::make_unique<Conn>(
      net::FramedConn(std::move(transport), conn_limits(config_)));
  conn->phase_deadline = Deadline::after(config_.handshake_timeout);
  if (fault.read_stall.count() > 0) {
    conn->stalled = true;
    conn->read_resume = Deadline::after(fault.read_stall);
  }
  conns_.push_back(std::move(conn));
  active_count_.fetch_add(1);
}

void Server::adopt_pending_connections() {
  std::vector<net::Transport> adopted;
  {
    const MutexLock lock(adopt_mutex_);
    adopted.swap(adopted_);
  }
  for (net::Transport& transport : adopted) {
    adopt_transport(std::move(transport));
  }
}

void Server::accept_ready_connections() {
  while (running_.load(std::memory_order_relaxed)) {
    std::optional<TcpStream> stream = listener_.try_accept();
    if (!stream) break;
    net::Transport transport = net::Transport::from_stream(std::move(*stream));
    if (config_.socket_send_buffer > 0) {
      ::setsockopt(transport.poll_fd(), SOL_SOCKET, SO_SNDBUF,
                   &config_.socket_send_buffer, sizeof config_.socket_send_buffer);
    }
    adopt_transport(std::move(transport));
  }
}

std::size_t Server::ready_connection_count() const { return ready_count_; }

void Server::handle_message(Conn& conn, Message message,
                            std::vector<PendingUpload>& uploads) {
  const auto queue_reply = [&](const Message& reply) {
    if (conn.framed.queue_frame(encode(reply))) return true;
    // Write budget exhausted with reads already pausing at the high-water
    // mark: the peer broke the request/response cadence badly enough that
    // the stream is unrecoverable.
    drop_connection(conn, dropped_count_);
    return false;
  };

  if (const auto* hello = std::get_if<Hello>(&message)) {
    HelloAck ack;
    if (hello->version != kProtocolVersion) {
      ack.accepted = false;
      rejected_count_.fetch_add(1);
      if (queue_reply(ack)) begin_drain(conn);
      return;
    }
    if (conn.phase == Phase::kHandshake &&
        ready_connection_count() >= config_.max_connections) {
      // Overload: shed with a seeded retry-after hint instead of serving.
      ack.accepted = false;
      ack.retry_after_ms = static_cast<std::uint32_t>(
          config_.shed_retry_after_base.count() +
          shed_rng_.uniform_int(0, config_.shed_retry_after_spread.count()));
      shed_count_.fetch_add(1);
      if (queue_reply(ack)) begin_drain(conn);
      return;
    }
    if (conn.phase == Phase::kHandshake) {
      conn.phase = Phase::kReady;
      ready_count_ += 1;
    }
    conn.unit_id = hello->unit_id;
    conn.phase_deadline = Deadline::after(config_.idle_timeout);
    {
      const MutexLock lock(mutex_);
      units_.try_emplace(conn.unit_id);
    }
    queue_reply(ack);
    return;
  }

  if (const auto* poll = std::get_if<PollCommands>(&message)) {
    if (conn.phase != Phase::kReady || poll->unit_id != conn.unit_id) {
      // No phantom unit state for unauthenticated peers.
      drop_connection(conn, rejected_count_);
      return;
    }
    Commands response;
    {
      const MutexLock lock(mutex_);
      response.commands.swap(units_[conn.unit_id].pending_commands);
    }
    queue_reply(response);
    return;
  }

  if (auto* upload = std::get_if<DataUpload>(&message)) {
    if (conn.phase != Phase::kReady || upload->unit_id != conn.unit_id) {
      drop_connection(conn, rejected_count_);
      return;
    }
    // Staged for the end-of-tick batch: every upload that arrived this poll
    // tick is applied under one units_ lock.
    uploads.push_back(PendingUpload{&conn, std::move(*upload)});
    return;
  }

  // Server-only message arriving at the server: protocol violation.
  drop_connection(conn, dropped_count_);
}

void Server::service_connection(Conn& conn,
                                std::vector<PendingUpload>& uploads) {
  if (conn.closing) return;

  // Flush first: it frees write budget for this tick's replies and lets a
  // draining connection finish.
  if (conn.framed.wants_write() || conn.framed.close_after_flush()) {
    switch (conn.framed.flush_writes()) {
      case net::FramedConn::Status::kError:
      case net::FramedConn::Status::kClosed:  // torn prefix fully flushed
        drop_connection(conn, dropped_count_);
        return;
      case net::FramedConn::Status::kOpen:
        break;
    }
    update_backpressure(conn);
  }

  if (!reads_enabled(conn)) return;

  std::vector<std::vector<std::byte>> frames;
  const net::FramedConn::Status status = conn.framed.pump_reads(frames);
  for (std::vector<std::byte>& payload : frames) {
    if (conn.closing || conn.phase == Phase::kDraining) break;
    Message message;
    try {
      message = decode(payload);
    } catch (const std::exception&) {
      drop_connection(conn, dropped_count_);
      break;
    }
    handle_message(conn, std::move(message), uploads);
  }
  if (!conn.closing) {
    if (status == net::FramedConn::Status::kClosed) {
      // Clean disconnect. Replies queued for frames that arrived in this
      // same pump still flush first (replay scripts end in EOF; TCP peers
      // may half-close after their last request).
      if (conn.framed.wants_write()) {
        begin_drain(conn);
      } else {
        mark_closed(conn);
      }
    } else if (status == net::FramedConn::Status::kError) {
      drop_connection(conn, dropped_count_);
    }
  }
  if (conn.closing) return;

  // Deadline bookkeeping: a started frame must finish within frame_timeout
  // (armed once per frame, so a one-byte trickle cannot keep resetting it);
  // completed frames refresh the idle deadline.
  if (conn.framed.frame_in_progress()) {
    if (!conn.mid_frame) {
      conn.mid_frame = true;
      conn.frame_deadline = Deadline::after(config_.frame_timeout);
    }
  } else {
    conn.mid_frame = false;
    if (!frames.empty() && conn.phase == Phase::kReady) {
      conn.phase_deadline = Deadline::after(config_.idle_timeout);
    }
  }

  // Opportunistic flush so replies do not wait a full poll cycle.
  if (conn.framed.wants_write() || conn.framed.close_after_flush()) {
    switch (conn.framed.flush_writes()) {
      case net::FramedConn::Status::kError:
      case net::FramedConn::Status::kClosed:
        drop_connection(conn, dropped_count_);
        return;
      case net::FramedConn::Status::kOpen:
        break;
    }
  }
  update_backpressure(conn);
}

void Server::ingest_uploads(std::vector<PendingUpload>& uploads) {
  if (uploads.empty()) return;
  {
    const MutexLock lock(mutex_);
    ingest_flush_count_.fetch_add(1);
    for (PendingUpload& pending : uploads) {
      if (pending.conn->closing) continue;
      batches_ingested_count_.fetch_add(1);
      UnitState& unit = units_[pending.upload.unit_id];
      ChannelData& channel = unit.channels[pending.upload.channel];
      const std::uint64_t sequence = pending.upload.sequence;
      const bool duplicate = sequence < channel.seen_watermark ||
                             channel.seen_sequences.contains(sequence);
      if (duplicate) continue;
      channel.seen_sequences.insert(sequence);
      for (const Sample& sample : pending.upload.samples) {
        channel.samples.insert_or_assign(sample.time, sample.value);
      }
      unit.accepted_batches += 1;
      // Compact the seen set to its window; the watermark keeps everything
      // below it deduplicated without storing each sequence forever.
      if (config_.seen_sequence_window > 0) {
        while (channel.seen_sequences.size() > config_.seen_sequence_window) {
          const auto oldest = channel.seen_sequences.begin();
          channel.seen_watermark = *oldest + 1;
          channel.seen_sequences.erase(oldest);
        }
      }
      if (config_.max_samples_per_channel > 0) {
        while (channel.samples.size() > config_.max_samples_per_channel) {
          channel.samples.erase(channel.samples.begin());
          samples_evicted_count_.fetch_add(1);
        }
      }
    }
  }
  // Acks queue outside the lock; a full write budget here means the peer
  // earned a drop, same as any other reply.
  for (PendingUpload& pending : uploads) {
    Conn& conn = *pending.conn;
    if (conn.closing) continue;
    UploadAck ack;
    ack.sequence = pending.upload.sequence;
    if (!conn.framed.queue_frame(encode(Message{ack}))) {
      drop_connection(conn, dropped_count_);
      continue;
    }
    if (conn.framed.wants_write() || conn.framed.close_after_flush()) {
      switch (conn.framed.flush_writes()) {
        case net::FramedConn::Status::kError:
        case net::FramedConn::Status::kClosed:
          drop_connection(conn, dropped_count_);
          continue;
        case net::FramedConn::Status::kOpen:
          break;
      }
    }
    update_backpressure(conn);
  }
  uploads.clear();
}

void Server::enforce_deadlines(Conn& conn) {
  if (conn.closing) return;
  if (conn.phase == Phase::kDraining) {
    if (!conn.framed.wants_write()) {
      mark_closed(conn);  // drained cleanly; reap without blame
    } else if (conn.phase_deadline.expired()) {
      drop_connection(conn, dropped_count_);  // peer never drained the reply
    }
    return;
  }
  if (conn.mid_frame && conn.frame_deadline.expired()) {
    drop_connection(conn, evicted_count_);  // torn/slow frame
    return;
  }
  if (conn.phase_deadline.expired()) {
    drop_connection(conn, evicted_count_);  // handshake or idle deadline
  }
}

void Server::run() {
  std::vector<pollfd> pfds;
  std::vector<Conn*> pfd_conns;
  std::vector<PendingUpload> uploads;

  while (running_.load(std::memory_order_acquire)) {
    adopt_pending_connections();

    pfds.clear();
    pfd_conns.clear();
    pfds.push_back(pollfd{wakeup_.poll_fd(), POLLIN, 0});
    const int listener_fd = listener_.poll_fd();
    const std::size_t listener_slot = pfds.size();
    if (listener_fd >= 0) pfds.push_back(pollfd{listener_fd, POLLIN, 0});
    const std::size_t conn_base = pfds.size();

    int timeout_ms = 200;
    const auto consider = [&timeout_ms](const Deadline& deadline) {
      if (deadline.is_never()) return;
      const auto remaining = deadline.remaining().count();
      if (remaining < timeout_ms) timeout_ms = static_cast<int>(remaining);
    };
    bool always_ready_pending = false;
    for (const auto& conn_ptr : conns_) {
      const Conn& conn = *conn_ptr;
      if (conn.closing) continue;
      short events = 0;
      if (reads_enabled(conn)) events |= POLLIN;
      if (conn.framed.wants_write() || conn.framed.close_after_flush()) {
        events |= POLLOUT;
      }
      if (conn.phase == Phase::kDraining) {
        consider(conn.phase_deadline);
      } else {
        if (conn.mid_frame) consider(conn.frame_deadline);
        consider(conn.phase_deadline);
        if (conn.stalled && !conn.read_resume.expired()) {
          consider(conn.read_resume);
        }
      }
      // An injected recv-delay stall holds a parsed frame in the conn's
      // buffer; the fd may never signal again, so the release is driven by
      // the stall deadline, not by poll().
      if (conn.framed.read_stalled()) {
        if (conn.framed.read_stall_deadline().expired()) {
          always_ready_pending = true;
        } else {
          consider(conn.framed.read_stall_deadline());
        }
      }
      const int fd = conn.framed.transport().poll_fd();
      if (fd < 0) {
        // No pollable fd (replay backend): always ready when it wants I/O.
        if (events != 0) always_ready_pending = true;
        continue;
      }
      if (events == 0) continue;
      pfds.push_back(pollfd{fd, events, 0});
      pfd_conns.push_back(conn_ptr.get());
    }
    if (always_ready_pending) timeout_ms = 0;
    if (timeout_ms < 0) timeout_ms = 0;

    const int rc =
        poll_fds(pfds.data(), static_cast<unsigned long>(pfds.size()), timeout_ms);
    if (!running_.load(std::memory_order_acquire)) break;
    if (rc < 0) continue;  // EINTR: re-evaluate and re-poll

    if (pfds[0].revents != 0) wakeup_.drain();
    if (listener_fd >= 0 && pfds[listener_slot].revents != 0) {
      accept_ready_connections();
    }

    for (std::size_t i = 0; i < pfd_conns.size(); ++i) {
      if (pfds[conn_base + i].revents == 0) continue;
      service_connection(*pfd_conns[i], uploads);
    }
    for (const auto& conn_ptr : conns_) {
      if (conn_ptr->framed.transport().poll_fd() < 0) {
        service_connection(*conn_ptr, uploads);
      } else if (!conn_ptr->closing && conn_ptr->framed.read_stalled() &&
                 conn_ptr->framed.read_stall_deadline().expired()) {
        // Release expired read stalls even when the fd stayed quiet.
        service_connection(*conn_ptr, uploads);
      }
    }

    ingest_uploads(uploads);

    for (const auto& conn_ptr : conns_) enforce_deadlines(*conn_ptr);

    // Reap: connections closed this tick leave the set immediately — no
    // zombie state waiting for the next accept (the old server's bug).
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->closing) {
        reaped_count_.fetch_add(1);
        active_count_.fetch_sub(1);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Shutdown: close everything; these closes are part of stop(), not reaps.
  active_count_.store(0);
  conns_.clear();
  listener_.close();
}

}  // namespace joules::autopower
