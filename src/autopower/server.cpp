#include "autopower/server.hpp"

#include <utility>

namespace joules::autopower {

Server::Server(std::uint16_t port) : listener_(port), port_(listener_.port()) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> connections;
  {
    const std::lock_guard lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (std::thread& thread : connections) {
    if (thread.joinable()) thread.join();
  }
}

void Server::enqueue_command(const std::string& unit_id, const Command& command) {
  const std::lock_guard lock(mutex_);
  units_[unit_id].pending_commands.push_back(command);
}

std::vector<std::string> Server::known_units() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(units_.size());
  for (const auto& [unit_id, state] : units_) out.push_back(unit_id);
  return out;
}

TimeSeries Server::measurements(const std::string& unit_id, int channel) const {
  const std::lock_guard lock(mutex_);
  TimeSeries out;
  const auto unit_it = units_.find(unit_id);
  if (unit_it == units_.end()) return out;
  const auto channel_it = unit_it->second.channels.find(channel);
  if (channel_it == unit_it->second.channels.end()) return out;
  for (const auto& [time, value] : channel_it->second.samples) {
    out.push(time, value);
  }
  return out;
}

std::size_t Server::accepted_batches(const std::string& unit_id) const {
  const std::lock_guard lock(mutex_);
  const auto it = units_.find(unit_id);
  return it == units_.end() ? 0 : it->second.accepted_batches;
}

void Server::accept_loop() {
  while (running_) {
    std::optional<TcpStream> stream = listener_.accept(Millis{200});
    if (!stream) continue;
    const std::lock_guard lock(connections_mutex_);
    connections_.emplace_back(
        [this, s = std::move(*stream)]() mutable { serve_connection(std::move(s)); });
  }
}

void Server::serve_connection(TcpStream stream) {
  std::string unit_id;  // set by Hello; required before data is accepted
  try {
    while (running_) {
      // Poll in short slices so stop() never waits behind an idle client,
      // then read the whole frame with a generous timeout (polling first
      // avoids losing sync to a mid-header timeout).
      if (!stream.wait_readable(Millis{250})) continue;
      const auto payload = read_frame(stream, Millis{60000});
      if (!payload) return;  // clean disconnect
      const Message message = decode(*payload);

      if (const auto* hello = std::get_if<Hello>(&message)) {
        HelloAck ack;
        ack.accepted = hello->version == kProtocolVersion;
        if (ack.accepted) {
          unit_id = hello->unit_id;
          const std::lock_guard lock(mutex_);
          units_.try_emplace(unit_id);
        }
        write_frame(stream, encode(ack));
        if (!ack.accepted) return;
        continue;
      }

      if (const auto* poll = std::get_if<PollCommands>(&message)) {
        Commands response;
        {
          const std::lock_guard lock(mutex_);
          auto& state = units_[poll->unit_id];
          response.commands.swap(state.pending_commands);
        }
        write_frame(stream, encode(response));
        continue;
      }

      if (const auto* upload = std::get_if<DataUpload>(&message)) {
        {
          const std::lock_guard lock(mutex_);
          auto& channel = units_[upload->unit_id].channels[upload->channel];
          if (channel.seen_sequences.insert(upload->sequence).second) {
            for (const Sample& sample : upload->samples) {
              channel.samples.insert_or_assign(sample.time, sample.value);
            }
            units_[upload->unit_id].accepted_batches += 1;
          }
        }
        UploadAck ack;
        ack.sequence = upload->sequence;
        write_frame(stream, encode(ack));
        continue;
      }

      // Server-only message arriving at the server: protocol violation.
      return;
    }
  } catch (const std::exception&) {
    // Connection-level failure: drop the connection; the client reconnects
    // and re-uploads (uploads are idempotent).
  }
}

}  // namespace joules::autopower
