// The Autopower measurement unit (client side).
//
// A unit owns a power meter, samples the router's wall power on a schedule,
// buffers samples locally, and uploads them to the collection server in
// acknowledged batches. Design constraints from §6.1, all reproduced here:
//   - client-initiated connection only (works behind NAT);
//   - local store-and-forward: samples survive connection loss;
//   - resilience to power failure: buffer and sequence state persist to disk
//     and are restored on restart;
//   - remote control: the unit polls the server for start/stop commands.
//
// The sampling clock is simulation time: the application drives `tick(t)`
// (tests and examples advance time explicitly); network I/O is real TCP.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "autopower/protocol.hpp"
#include "meter/power_meter.hpp"
#include "net/socket.hpp"

namespace joules::autopower {

class Client {
 public:
  struct Options {
    std::string unit_id;
    std::uint16_t server_port = 0;
    std::size_t upload_batch = 256;  // samples per DataUpload
  };

  // `source(channel, t)` is the true wall power on a channel at time t (the
  // simulated router's PSU feed); the meter applies its error model on top.
  Client(Options options, PowerMeter meter,
         std::function<double(int, SimTime)> source);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Measurement control --------------------------------------------
  void start_measurement(int channel, SimTime period_s);
  void stop_measurement(int channel);
  [[nodiscard]] bool is_measuring(int channel) const;

  // Samples every active channel that is due at `now` into the local buffer.
  // `now` must not go backwards.
  void tick(SimTime now);

  // --- Networking --------------------------------------------------------
  // Connects (if needed), polls for commands, applies them, and uploads all
  // buffered batches. Returns true if everything flushed; false leaves the
  // buffer intact for a later retry (store-and-forward).
  bool sync();

  [[nodiscard]] bool is_connected() const noexcept { return stream_.valid(); }
  // Simulates a network interruption.
  void drop_connection() noexcept;

  // --- Local persistence -----------------------------------------------
  // Saves/restores buffered samples and upload sequence numbers, so a unit
  // restarted after a power failure resumes without loss or duplication.
  void save_state(const std::filesystem::path& path) const;
  void load_state(const std::filesystem::path& path);

  [[nodiscard]] std::size_t buffered_samples() const;

 private:
  bool ensure_connected();
  bool poll_commands();
  bool upload_buffered();
  void apply_command(const Command& command);

  struct ChannelState {
    bool measuring = false;
    SimTime period_s = 1;
    SimTime last_sample = std::numeric_limits<SimTime>::min();
    std::vector<Sample> buffer;
    std::uint64_t next_sequence = 0;
  };

  Options options_;
  PowerMeter meter_;
  std::function<double(int, SimTime)> source_;
  std::map<int, ChannelState> channels_;
  TcpStream stream_;
  SimTime last_tick_ = std::numeric_limits<SimTime>::min();
};

}  // namespace joules::autopower
