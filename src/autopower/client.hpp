// The Autopower measurement unit (client side).
//
// A unit owns a power meter, samples the router's wall power on a schedule,
// buffers samples locally, and uploads them to the collection server in
// acknowledged batches. Design constraints from §6.1, all reproduced here:
//   - client-initiated connection only (works behind NAT);
//   - local store-and-forward: samples survive connection loss;
//   - resilience to power failure: buffer and sequence state persist to disk
//     and are restored on restart;
//   - remote control: the unit polls the server for start/stop commands.
//
// The sampling clock is simulation time: the application drives `tick(t)`
// (tests and examples advance time explicitly); network I/O is real TCP.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "autopower/protocol.hpp"
#include "meter/power_meter.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

namespace joules::autopower {

// How `Client::sync` retries a failed flush. The delay before retry k
// (zero-based) is min(initial_backoff * multiplier^k, max_backoff), scaled
// by a uniform jitter factor in [1 - jitter, 1 + jitter] drawn from a
// generator seeded with `seed` — so a fleet of units sharing a schedule
// still spreads its reconnect storm, and a test with jitter = 0 can assert
// the exact documented sequence.
struct RetryPolicy {
  int max_attempts = 3;          // total attempts per sync() call (>= 1)
  Millis initial_backoff{50};
  double multiplier = 2.0;
  Millis max_backoff{2000};
  double jitter = 0.1;           // fraction of the delay; 0 disables
  std::uint64_t seed = 0x4a6f756c6573ull;
};

class Client {
 public:
  struct Options {
    std::string unit_id;
    std::uint16_t server_port = 0;
    std::size_t upload_batch = 256;  // samples per DataUpload
    RetryPolicy retry;
  };

  // `source(channel, t)` is the true wall power on a channel at time t (the
  // simulated router's PSU feed); the meter applies its error model on top.
  Client(Options options, PowerMeter meter,
         std::function<double(int, SimTime)> source);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Measurement control --------------------------------------------
  void start_measurement(int channel, SimTime period_s);
  void stop_measurement(int channel);
  [[nodiscard]] bool is_measuring(int channel) const;

  // Samples every active channel that is due at `now` into the local buffer.
  // `now` must not go backwards.
  void tick(SimTime now);

  // --- Networking --------------------------------------------------------
  // Connects (if needed), polls for commands, applies them, and uploads all
  // buffered batches, retrying per the RetryPolicy with exponential backoff
  // between attempts. Returns true if everything flushed; false (after the
  // capped schedule is exhausted) leaves the buffer intact for a later call
  // (store-and-forward) and latches the give-up state.
  [[nodiscard]] bool sync();

  // True after a sync() exhausted its whole retry schedule; cleared by the
  // next successful sync.
  [[nodiscard]] bool gave_up() const noexcept { return gave_up_; }

  // The backoff delays the most recent sync() actually slept, in order.
  // Empty when the first attempt succeeded. Lets tests pin the schedule.
  [[nodiscard]] const std::vector<Millis>& last_backoff_delays() const noexcept {
    return last_backoff_delays_;
  }

  // Most recent HelloAck retry-after hint received from an overloaded
  // server (0 = never shed). The next backoff sleep after the hint uses
  // max(scheduled delay, hint).
  [[nodiscard]] Millis last_retry_after_hint() const noexcept {
    return last_retry_after_hint_;
  }

  struct SyncStats {
    std::uint64_t attempts = 0;   // individual connect+flush attempts
    std::uint64_t failures = 0;   // attempts that failed
    std::uint64_t give_ups = 0;   // sync() calls that exhausted the schedule
  };
  [[nodiscard]] const SyncStats& sync_stats() const noexcept { return sync_stats_; }

  [[nodiscard]] bool is_connected() const noexcept { return stream_.valid(); }
  // Simulates a network interruption.
  void drop_connection() noexcept;

  // --- Local persistence -----------------------------------------------
  // Saves/restores buffered samples and upload sequence numbers, so a unit
  // restarted after a power failure resumes without loss or duplication.
  //
  // The on-disk format is a versioned header line ("# autopower-client-state
  // v2") followed by CSV; integers (times, sequences) round-trip exactly —
  // never through double — and the file is replaced atomically (temp file +
  // fsync + rename), so a crash mid-save leaves the previous state intact.
  // Headerless v1 files from older builds still load.
  void save_state(const std::filesystem::path& path) const;
  void load_state(const std::filesystem::path& path);

  [[nodiscard]] std::size_t buffered_samples() const;

  // Writes a run manifest (obs) with the unit's sync counters and buffer
  // depth — what a technician reads after recovering a unit from the field.
  void write_manifest(const std::filesystem::path& path) const;

 private:
  bool try_sync_once();
  bool ensure_connected();
  bool poll_commands();
  bool upload_buffered();
  void apply_command(const Command& command);
  [[nodiscard]] Millis backoff_delay(int failure_index);

  struct ChannelState {
    bool measuring = false;
    SimTime period_s = 1;
    SimTime last_sample = std::numeric_limits<SimTime>::min();
    std::vector<Sample> buffer;
    std::uint64_t next_sequence = 0;
  };

  Options options_;
  PowerMeter meter_;
  std::function<double(int, SimTime)> source_;
  std::map<int, ChannelState> channels_;
  TcpStream stream_;
  SimTime last_tick_ = std::numeric_limits<SimTime>::min();
  Rng retry_rng_;
  Millis retry_after_hint_{0};       // pending floor for the next backoff
  Millis last_retry_after_hint_{0};  // latched for tests/monitoring
  bool gave_up_ = false;
  std::vector<Millis> last_backoff_delays_;
  SyncStats sync_stats_;
};

}  // namespace joules::autopower
