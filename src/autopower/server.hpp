// The Autopower collection server.
//
// Accepts unit connections on loopback TCP, answers command polls, and
// stores uploaded measurements. Uploads are idempotent: batches carry a
// per-(unit, channel) sequence number, and a batch whose sequence was already
// accepted is acknowledged again without being stored twice — so a client
// that lost an ack can safely re-send.
//
// Connection hygiene: a connection must complete a Hello handshake before
// its polls/uploads are honoured, and each message's unit_id must match the
// one that authenticated — a peer can neither create phantom unit state nor
// write into another unit's series. Finished connection threads are reaped
// by the acceptor as it loops, so a reconnect-heavy deployment (the normal
// case: units redial after every uplink drop) does not accumulate one zombie
// thread per reconnect until shutdown.
//
// Thread model: one acceptor thread, one thread per connection; all shared
// state behind a single mutex (the server handles a handful of units, not
// thousands).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "autopower/protocol.hpp"
#include "net/socket.hpp"
#include "util/time_series.hpp"

namespace joules::autopower {

class Server {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.
  explicit Server(std::uint16_t port = 0);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Queues a command for a unit; delivered on its next poll. (Trusted local
  // admin API: may name a unit that has not connected yet.)
  void enqueue_command(const std::string& unit_id, const Command& command);

  // Units that have said Hello at least once (plus any pre-registered via
  // enqueue_command).
  [[nodiscard]] std::vector<std::string> known_units() const;

  // All stored measurements for a unit's channel, time-ordered.
  [[nodiscard]] TimeSeries measurements(const std::string& unit_id,
                                        int channel) const;

  // Number of accepted (non-duplicate) upload batches, for tests/monitoring.
  [[nodiscard]] std::size_t accepted_batches(const std::string& unit_id) const;

  // Connection-lifecycle counters, for tests and monitoring.
  struct ConnectionStats {
    std::uint64_t accepted = 0;  // connections the acceptor handed to a thread
    std::uint64_t rejected = 0;  // failed handshakes + unit_id gate violations
    std::uint64_t dropped = 0;   // connections torn down on I/O or protocol errors
    std::uint64_t reaped = 0;    // finished connection threads joined pre-stop
    std::uint64_t active = 0;    // connection threads currently running
  };
  [[nodiscard]] ConnectionStats connection_stats() const;

  // Writes a run manifest (obs) with the connection-lifecycle counters and
  // per-unit batch totals — the server's audit trail. Atomic write; safe to
  // call while serving (counters are a consistent-enough snapshot).
  void write_manifest(const std::filesystem::path& path) const;

  void stop();

 private:
  void accept_loop();
  void reap_finished_connections();
  void serve_connection(TcpStream stream);

  struct ChannelData {
    std::map<SimTime, double> samples;  // keyed by time: dedups re-uploads
    std::set<std::uint64_t> seen_sequences;
  };
  struct UnitState {
    std::map<int, ChannelData> channels;
    std::vector<Command> pending_commands;
    std::size_t accepted_batches = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, UnitState> units_;

  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{true};

  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::thread acceptor_;
  std::vector<Connection> connections_;  // guarded by connections_mutex_
  mutable std::mutex connections_mutex_;

  std::atomic<std::uint64_t> accepted_count_{0};
  std::atomic<std::uint64_t> rejected_count_{0};
  std::atomic<std::uint64_t> dropped_count_{0};
  std::atomic<std::uint64_t> reaped_count_{0};
};

}  // namespace joules::autopower
