// The Autopower collection server.
//
// Accepts unit connections on loopback TCP, answers command polls, and
// stores uploaded measurements. Uploads are idempotent: batches carry a
// per-(unit, channel) sequence number, and a batch whose sequence was already
// accepted is acknowledged again without being stored twice — so a client
// that lost an ack can safely re-send.
//
// Thread model: one acceptor thread, one thread per connection; all shared
// state behind a single mutex (the server handles a handful of units, not
// thousands).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "autopower/protocol.hpp"
#include "net/socket.hpp"
#include "util/time_series.hpp"

namespace joules::autopower {

class Server {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.
  explicit Server(std::uint16_t port = 0);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Queues a command for a unit; delivered on its next poll.
  void enqueue_command(const std::string& unit_id, const Command& command);

  // Units that have said Hello at least once.
  [[nodiscard]] std::vector<std::string> known_units() const;

  // All stored measurements for a unit's channel, time-ordered.
  [[nodiscard]] TimeSeries measurements(const std::string& unit_id,
                                        int channel) const;

  // Number of accepted (non-duplicate) upload batches, for tests/monitoring.
  [[nodiscard]] std::size_t accepted_batches(const std::string& unit_id) const;

  void stop();

 private:
  void accept_loop();
  void serve_connection(TcpStream stream);

  struct ChannelData {
    std::map<SimTime, double> samples;  // keyed by time: dedups re-uploads
    std::set<std::uint64_t> seen_sequences;
  };
  struct UnitState {
    std::map<int, ChannelData> channels;
    std::vector<Command> pending_commands;
    std::size_t accepted_batches = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, UnitState> units_;

  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{true};
  std::thread acceptor_;
  std::vector<std::thread> connections_;
  std::mutex connections_mutex_;
};

}  // namespace joules::autopower
