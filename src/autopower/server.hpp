// The Autopower collection server.
//
// Accepts unit connections, answers command polls, and stores uploaded
// measurements. Uploads are idempotent: batches carry a per-(unit, channel)
// sequence number, and a batch whose sequence was already accepted is
// acknowledged again without being stored twice — so a client that lost an
// ack can safely re-send.
//
// Connection hygiene: a connection must complete a Hello handshake before
// its polls/uploads are honoured, and each message's unit_id must match the
// one that authenticated — a peer can neither create phantom unit state nor
// write into another unit's series.
//
// Thread model: ONE reactor thread multiplexes every connection off a
// single poll() loop (through net::Transport's nonblocking backends and
// net::FramedConn's incremental frame assembly), so a slow or torn-frame
// peer can never hold a thread — it holds only its own connection state,
// bounded by absolute per-connection deadlines. The robustness layer on
// top:
//   - admission control: past `max_connections` authenticated units, a
//     Hello is answered HelloAck{accepted=false} with a seeded retry-after
//     hint and the connection drains away (shed, not crashed);
//   - backpressure: a connection whose staged writes pass the high-water
//     mark stops being read until the peer drains below the low-water mark
//     (bounded buffers, never unbounded queueing);
//   - eviction: handshake, idle, mid-frame, and drain deadlines each bound
//     how long a connection may sit in that state;
//   - batched ingest: all uploads that arrive in one poll tick are applied
//     under a single units_ lock, amortizing contention across the fleet;
//   - retention caps: per-channel sample and seen-sequence windows bound
//     per-unit memory (server.samples_evicted counts the trims).
//
// External threads (stop(), adopt_connection(), enqueue_command()) hand
// work to the reactor through a wakeup pipe; stop() completes within one
// poll slice rather than waiting behind any connection's frame timeout.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "autopower/protocol.hpp"
#include "net/framed_conn.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"
#include "util/time_series.hpp"

namespace joules::autopower {

// Reactor tuning. The defaults serve the unit-test scale (a handful of
// units, no ceiling pressure) with the same observable behavior as the old
// thread-per-connection server; fleet tests and benches tighten them.
struct ServerConfig {
  std::uint16_t port = 0;        // 0 = ephemeral
  int listen_backlog = 512;      // kernel accept queue for dial bursts
  std::size_t max_connections = 4096;  // admission ceiling (authenticated)

  Millis handshake_timeout{10000};  // accept -> completed Hello
  Millis idle_timeout{60000};       // authenticated, between frames
  Millis frame_timeout{10000};      // a started frame must finish
  Millis drain_timeout{5000};       // flush-before-close budget

  std::size_t write_high_water = 256 * 1024;  // pause reads above...
  std::size_t write_low_water = 64 * 1024;    // ...resume below

  std::size_t max_samples_per_channel = 0;  // 0 = unbounded
  std::size_t seen_sequence_window = 1024;  // compacted via watermark

  // Seed for the shed retry-after hints: hint = base + uniform[0, spread].
  std::uint64_t shed_seed = 0x4a6f756c6573ull;
  Millis shed_retry_after_base{250};
  Millis shed_retry_after_spread{250};

  // When nonzero, SO_SNDBUF requested on accepted sockets. Small values let
  // tests push the kernel buffer aside and exercise real backpressure.
  int socket_send_buffer = 0;
};

class Server {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.
  explicit Server(std::uint16_t port = 0);
  explicit Server(const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Queues a command for a unit; delivered on its next poll. (Trusted local
  // admin API: may name a unit that has not connected yet.)
  void enqueue_command(const std::string& unit_id, const Command& command)
      JOULES_EXCLUDES(mutex_);

  // Units that have said Hello at least once (plus any pre-registered via
  // enqueue_command).
  [[nodiscard]] std::vector<std::string> known_units() const
      JOULES_EXCLUDES(mutex_);

  // All stored measurements for a unit's channel, time-ordered.
  [[nodiscard]] TimeSeries measurements(const std::string& unit_id,
                                        int channel) const
      JOULES_EXCLUDES(mutex_);

  // Number of accepted (non-duplicate) upload batches, for tests/monitoring.
  [[nodiscard]] std::size_t accepted_batches(const std::string& unit_id) const
      JOULES_EXCLUDES(mutex_);

  // Hands the server a connection on a non-TCP transport (pipe or replay
  // backend). The reactor adopts it on its next tick and serves it exactly
  // like an accepted socket — the transport conformance suite's seam.
  void adopt_connection(net::Transport transport)
      JOULES_EXCLUDES(adopt_mutex_);

  // Connection-lifecycle counters, for tests and monitoring.
  struct ConnectionStats {
    std::uint64_t accepted = 0;  // connections handed to the reactor
    std::uint64_t rejected = 0;  // failed handshakes + unit_id gate violations
    std::uint64_t dropped = 0;   // connections torn down on I/O or protocol errors
    std::uint64_t reaped = 0;    // connections cleaned up pre-stop
    std::uint64_t active = 0;    // connections currently open
    std::uint64_t shed = 0;      // Hellos answered accepted=false for overload
    std::uint64_t evicted = 0;   // closed by deadline (handshake/idle/frame)
    std::uint64_t backpressure_stalls = 0;  // read-pause transitions
    std::uint64_t batches_ingested = 0;     // uploads ingested (incl. duplicates)
    std::uint64_t ingest_flushes = 0;       // units_ lock takes for ingest
    std::uint64_t samples_evicted = 0;      // retention-cap trims
  };
  [[nodiscard]] ConnectionStats connection_stats() const;

  // Writes a run manifest (obs) with the connection-lifecycle counters and
  // per-unit batch totals — the server's audit trail. Atomic write; safe to
  // call while serving (counters are a consistent-enough snapshot).
  void write_manifest(const std::filesystem::path& path) const
      JOULES_EXCLUDES(mutex_);

  // Idempotent and safe to race: the destructor and an explicit stop() (or
  // two explicit stops) may run concurrently; join_mutex_ serializes the
  // reactor join.
  void stop() JOULES_EXCLUDES(join_mutex_);

 private:
  enum class Phase : std::uint8_t {
    kHandshake,  // accepted, no (valid) Hello yet
    kReady,      // authenticated; polls/uploads honoured
    kDraining,   // final writes flushing; reads ignored; closes when empty
  };

  struct Conn {
    explicit Conn(net::FramedConn framed_conn)
        : framed(std::move(framed_conn)) {}
    net::FramedConn framed;
    Phase phase = Phase::kHandshake;
    std::string unit_id;                          // set by a successful Hello
    Deadline phase_deadline = Deadline::never();  // handshake/idle/drain
    Deadline frame_deadline = Deadline::never();  // armed while mid-frame
    Deadline read_resume = Deadline::never();     // injected stall window
    bool mid_frame = false;
    bool read_paused = false;  // backpressure: write queue above high water
    bool stalled = false;      // fault-injected read stall active
    bool closing = false;      // marked dead this tick; removed at tick end
  };

  struct PendingUpload {
    Conn* conn;
    DataUpload upload;
  };

  JOULES_REACTOR_CONTEXT void run();
  void adopt_pending_connections() JOULES_EXCLUDES(adopt_mutex_);
  void accept_ready_connections();
  bool reads_enabled(const Conn& conn) const;
  void service_connection(Conn& conn, std::vector<PendingUpload>& uploads);
  void handle_message(Conn& conn, Message message,
                      std::vector<PendingUpload>& uploads)
      JOULES_EXCLUDES(mutex_);
  void ingest_uploads(std::vector<PendingUpload>& uploads)
      JOULES_EXCLUDES(mutex_);
  void begin_drain(Conn& conn);
  void mark_closed(Conn& conn);
  void drop_connection(Conn& conn, std::atomic<std::uint64_t>& counter);
  void enforce_deadlines(Conn& conn);
  void update_backpressure(Conn& conn);
  void adopt_transport(net::Transport transport);
  [[nodiscard]] std::size_t ready_connection_count() const;

  struct ChannelData {
    std::map<SimTime, double> samples;  // keyed by time: dedups re-uploads
    std::set<std::uint64_t> seen_sequences;
    // Sequences below this are treated as seen; raised when the seen set is
    // compacted to the configured window.
    std::uint64_t seen_watermark = 0;
  };
  struct UnitState {
    std::map<int, ChannelData> channels;
    std::vector<Command> pending_commands;
    std::size_t accepted_batches = 0;
  };

  ServerConfig config_;

  mutable Mutex mutex_;
  std::map<std::string, UnitState> units_ JOULES_GUARDED_BY(mutex_);

  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{true};

  WakeupPipe wakeup_;
  Mutex join_mutex_;  // serializes reactor_ joins (stop vs. destructor)
  std::thread reactor_ JOULES_GUARDED_BY(join_mutex_);
  std::vector<std::unique_ptr<Conn>> conns_;  // reactor thread only
  std::size_t ready_count_ = 0;               // kReady conns; reactor only

  // Never nested with mutex_ today; the declared order (adopt first) is the
  // one the lock-order lint enforces if that ever changes.
  Mutex adopt_mutex_ JOULES_ACQUIRED_BEFORE(mutex_);
  std::vector<net::Transport> adopted_ JOULES_GUARDED_BY(adopt_mutex_);

  Rng shed_rng_;  // reactor thread only

  std::atomic<std::uint64_t> accepted_count_{0};
  std::atomic<std::uint64_t> rejected_count_{0};
  std::atomic<std::uint64_t> dropped_count_{0};
  std::atomic<std::uint64_t> reaped_count_{0};
  std::atomic<std::uint64_t> active_count_{0};
  std::atomic<std::uint64_t> shed_count_{0};
  std::atomic<std::uint64_t> evicted_count_{0};
  std::atomic<std::uint64_t> backpressure_stall_count_{0};
  std::atomic<std::uint64_t> batches_ingested_count_{0};
  std::atomic<std::uint64_t> ingest_flush_count_{0};
  std::atomic<std::uint64_t> samples_evicted_count_{0};
};

}  // namespace joules::autopower
