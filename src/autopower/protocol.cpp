#include "autopower/protocol.hpp"

#include <stdexcept>

namespace joules::autopower {
namespace {

constexpr std::size_t kMaxSamplesPerUpload = 1u << 20;

void encode_body(ByteWriter& writer, const Hello& msg) {
  writer.u8(static_cast<std::uint8_t>(MessageType::kHello));
  writer.string(msg.unit_id);
  writer.u32(msg.version);
}

void encode_body(ByteWriter& writer, const HelloAck& msg) {
  writer.u8(static_cast<std::uint8_t>(MessageType::kHelloAck));
  writer.u8(msg.accepted ? 1 : 0);
  writer.u32(msg.retry_after_ms);
}

void encode_body(ByteWriter& writer, const PollCommands& msg) {
  writer.u8(static_cast<std::uint8_t>(MessageType::kPollCommands));
  writer.string(msg.unit_id);
}

void encode_body(ByteWriter& writer, const Commands& msg) {
  writer.u8(static_cast<std::uint8_t>(MessageType::kCommands));
  writer.u32(static_cast<std::uint32_t>(msg.commands.size()));
  for (const Command& command : msg.commands) {
    writer.u8(static_cast<std::uint8_t>(command.kind));
    writer.u8(command.channel);
    writer.u32(command.period_s);
  }
}

void encode_body(ByteWriter& writer, const DataUpload& msg) {
  writer.u8(static_cast<std::uint8_t>(MessageType::kDataUpload));
  writer.string(msg.unit_id);
  writer.u8(msg.channel);
  writer.u64(msg.sequence);
  writer.u32(static_cast<std::uint32_t>(msg.samples.size()));
  for (const Sample& sample : msg.samples) {
    writer.i64(sample.time);
    writer.f64(sample.value);
  }
}

void encode_body(ByteWriter& writer, const UploadAck& msg) {
  writer.u8(static_cast<std::uint8_t>(MessageType::kUploadAck));
  writer.u64(msg.sequence);
}

}  // namespace

std::vector<std::byte> encode(const Message& message) {
  ByteWriter writer;
  std::visit([&writer](const auto& msg) { encode_body(writer, msg); }, message);
  return std::move(writer).take();
}

Message decode(std::span<const std::byte> payload) {
  ByteReader reader(payload);
  const auto type = static_cast<MessageType>(reader.u8());
  switch (type) {
    case MessageType::kHello: {
      Hello msg;
      msg.unit_id = reader.string();
      msg.version = reader.u32();
      return msg;
    }
    case MessageType::kHelloAck: {
      HelloAck msg;
      msg.accepted = reader.u8() != 0;
      // Older servers stop after the accepted byte; the hint is optional.
      if (!reader.exhausted()) msg.retry_after_ms = reader.u32();
      return msg;
    }
    case MessageType::kPollCommands: {
      PollCommands msg;
      msg.unit_id = reader.string();
      return msg;
    }
    case MessageType::kCommands: {
      Commands msg;
      const std::uint32_t count = reader.u32();
      msg.commands.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        Command command;
        const std::uint8_t kind = reader.u8();
        if (kind != static_cast<std::uint8_t>(Command::Kind::kStartMeasurement) &&
            kind != static_cast<std::uint8_t>(Command::Kind::kStopMeasurement)) {
          throw std::runtime_error("autopower: unknown command kind");
        }
        command.kind = static_cast<Command::Kind>(kind);
        command.channel = reader.u8();
        command.period_s = reader.u32();
        msg.commands.push_back(command);
      }
      return msg;
    }
    case MessageType::kDataUpload: {
      DataUpload msg;
      msg.unit_id = reader.string();
      msg.channel = reader.u8();
      msg.sequence = reader.u64();
      const std::uint32_t count = reader.u32();
      if (count > kMaxSamplesPerUpload) {
        throw std::runtime_error("autopower: oversized upload");
      }
      msg.samples.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        Sample sample;
        sample.time = reader.i64();
        sample.value = reader.f64();
        msg.samples.push_back(sample);
      }
      return msg;
    }
    case MessageType::kUploadAck: {
      UploadAck msg;
      msg.sequence = reader.u64();
      return msg;
    }
  }
  throw std::runtime_error("autopower: unknown message type");
}

}  // namespace joules::autopower
