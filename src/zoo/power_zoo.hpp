// The Network Power Zoo — the paper's public database aggregating every kind
// of network power data "for the community to use and contribute to":
// datasheet records, derived power models, measurement summaries (SNMP and
// Autopower), and PSU sensor observations.
//
// The zoo is a plain directory of CSV collections so it can be diffed,
// versioned, and contributed to without tooling; `save`/`load` round-trip
// the full database.
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "datasheet/record.hpp"
#include "model/power_model.hpp"
#include "netpowerbench/experiment.hpp"
#include "psu/psu_unit.hpp"
#include "util/sim_clock.hpp"

namespace joules {

// Where a power measurement summary came from.
enum class MeasurementSource : std::uint8_t {
  kSnmp,       // router-reported PSU power
  kAutopower,  // external wall measurement
  kLab,        // NetPowerBench bench measurement
};

[[nodiscard]] std::string_view to_string(MeasurementSource source) noexcept;
[[nodiscard]] std::optional<MeasurementSource> parse_measurement_source(
    std::string_view text);

struct MeasurementSummary {
  std::string device_model;  // e.g. "NCS-55A1-24H"
  std::string router_name;   // anonymized deployment name, empty for lab
  MeasurementSource source = MeasurementSource::kAutopower;
  SimTime window_begin = 0;
  SimTime window_end = 0;
  double median_power_w = 0.0;
  double mean_power_w = 0.0;
  std::size_t sample_count = 0;
  // Robust-campaign provenance: how many samples the validation gates threw
  // away, and whether the bench had to intervene (lab measurements only;
  // SNMP/Autopower summaries stay kClean/0).
  std::size_t rejected_count = 0;
  WindowQuality quality = WindowQuality::kClean;
};

class PowerZoo {
 public:
  PowerZoo() = default;

  // --- Contributions ----------------------------------------------------
  void add_datasheet(DatasheetRecord record);
  // One model per (device, contributor); re-adding replaces.
  void add_power_model(const std::string& device_model, PowerModel model,
                       const std::string& contributor = "anonymous");
  void add_measurement(MeasurementSummary summary);
  void add_psu_observation(PsuObservation observation);

  // --- Queries ------------------------------------------------------------
  [[nodiscard]] std::vector<DatasheetRecord> datasheets(
      const std::string& vendor = {}, const std::string& model = {}) const;
  [[nodiscard]] std::optional<PowerModel> power_model(
      const std::string& device_model) const;
  [[nodiscard]] std::vector<MeasurementSummary> measurements(
      const std::string& device_model = {}) const;
  [[nodiscard]] std::vector<PsuObservation> psu_observations() const;

  // Cross-source view for one device: everything the zoo knows about it.
  struct DeviceDossier {
    std::optional<DatasheetRecord> datasheet;
    std::optional<PowerModel> model;
    std::vector<MeasurementSummary> measurements;
    std::size_t psu_observations = 0;
  };
  [[nodiscard]] DeviceDossier dossier(const std::string& device_model) const;

  struct Stats {
    std::size_t datasheets = 0;
    std::size_t power_models = 0;
    std::size_t measurements = 0;
    std::size_t psu_observations = 0;
  };
  [[nodiscard]] Stats stats() const noexcept;

  // --- Persistence -------------------------------------------------------
  // Writes datasheets.csv, power_models.csv, measurements.csv, and
  // psu_observations.csv into `directory` (created if needed).
  void save(const std::filesystem::path& directory) const;
  [[nodiscard]] static PowerZoo load(const std::filesystem::path& directory);

 private:
  std::vector<DatasheetRecord> datasheets_;
  std::map<std::string, std::pair<std::string, PowerModel>> models_;
  std::vector<MeasurementSummary> measurements_;
  std::vector<PsuObservation> psu_observations_;
};

}  // namespace joules
