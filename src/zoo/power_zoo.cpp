#include "zoo/power_zoo.hpp"

#include <stdexcept>

#include "model/model_io.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

std::string opt_number(const std::optional<double>& value) {
  return value.has_value() ? format_number(*value, 3) : std::string{};
}

std::optional<double> parse_opt(const std::string& text) {
  if (trim(text).empty()) return std::nullopt;
  return parse_first_number(text);
}

bool has_column(const CsvTable& table, std::string_view name) {
  for (const std::string& column : table.header()) {
    if (column == name) return true;
  }
  return false;
}

}  // namespace

std::string_view to_string(MeasurementSource source) noexcept {
  switch (source) {
    case MeasurementSource::kSnmp: return "snmp";
    case MeasurementSource::kAutopower: return "autopower";
    case MeasurementSource::kLab: return "lab";
  }
  return "unknown";
}

std::optional<MeasurementSource> parse_measurement_source(std::string_view text) {
  const std::string t = to_lower(trim(text));
  if (t == "snmp") return MeasurementSource::kSnmp;
  if (t == "autopower") return MeasurementSource::kAutopower;
  if (t == "lab") return MeasurementSource::kLab;
  return std::nullopt;
}

void PowerZoo::add_datasheet(DatasheetRecord record) {
  datasheets_.push_back(std::move(record));
}

void PowerZoo::add_power_model(const std::string& device_model, PowerModel model,
                               const std::string& contributor) {
  models_.insert_or_assign(device_model,
                           std::make_pair(contributor, std::move(model)));
}

void PowerZoo::add_measurement(MeasurementSummary summary) {
  measurements_.push_back(std::move(summary));
}

void PowerZoo::add_psu_observation(PsuObservation observation) {
  psu_observations_.push_back(std::move(observation));
}

std::vector<DatasheetRecord> PowerZoo::datasheets(const std::string& vendor,
                                                  const std::string& model) const {
  std::vector<DatasheetRecord> out;
  for (const DatasheetRecord& record : datasheets_) {
    if (!vendor.empty() && record.vendor != vendor) continue;
    if (!model.empty() && record.model != model) continue;
    out.push_back(record);
  }
  return out;
}

std::optional<PowerModel> PowerZoo::power_model(
    const std::string& device_model) const {
  const auto it = models_.find(device_model);
  if (it == models_.end()) return std::nullopt;
  return it->second.second;
}

std::vector<MeasurementSummary> PowerZoo::measurements(
    const std::string& device_model) const {
  std::vector<MeasurementSummary> out;
  for (const MeasurementSummary& summary : measurements_) {
    if (!device_model.empty() && summary.device_model != device_model) continue;
    out.push_back(summary);
  }
  return out;
}

std::vector<PsuObservation> PowerZoo::psu_observations() const {
  return psu_observations_;
}

PowerZoo::DeviceDossier PowerZoo::dossier(const std::string& device_model) const {
  DeviceDossier dossier;
  for (const DatasheetRecord& record : datasheets_) {
    if (record.model == device_model) {
      dossier.datasheet = record;
      break;
    }
  }
  dossier.model = power_model(device_model);
  dossier.measurements = measurements(device_model);
  for (const PsuObservation& obs : psu_observations_) {
    if (obs.router_model == device_model) ++dossier.psu_observations;
  }
  return dossier;
}

PowerZoo::Stats PowerZoo::stats() const noexcept {
  return Stats{datasheets_.size(), models_.size(), measurements_.size(),
               psu_observations_.size()};
}

void PowerZoo::save(const std::filesystem::path& directory) const {
  std::filesystem::create_directories(directory);

  CsvTable datasheets({"vendor", "model", "series", "typical_power_w",
                       "max_power_w", "max_bandwidth_gbps", "psu_count",
                       "psu_capacity_w", "release_year"});
  for (const DatasheetRecord& r : datasheets_) {
    datasheets.add_row(
        {r.vendor, r.model, r.series, opt_number(r.typical_power_w),
         opt_number(r.max_power_w), opt_number(r.max_bandwidth_gbps),
         r.psu_count ? std::to_string(*r.psu_count) : "",
         opt_number(r.psu_capacity_w),
         r.release_year ? std::to_string(*r.release_year) : ""});
  }
  datasheets.write_file(directory / "datasheets.csv");

  // Power models flatten into one table: device + contributor + the model's
  // own CSV schema.
  CsvTable models({"device", "contributor", "row", "port", "transceiver",
                   "rate", "P_base_W", "P_port_W", "P_trx_in_W", "P_trx_up_W",
                   "E_bit_pJ", "E_pkt_nJ", "P_offset_W"});
  for (const auto& [device, entry] : models_) {
    const CsvTable model_csv = model_to_csv(entry.second);
    for (std::size_t i = 0; i < model_csv.row_count(); ++i) {
      std::vector<std::string> row = {device, entry.first};
      for (const char* column :
           {"row", "port", "transceiver", "rate", "P_base_W", "P_port_W",
            "P_trx_in_W", "P_trx_up_W", "E_bit_pJ", "E_pkt_nJ", "P_offset_W"}) {
        row.push_back(model_csv.cell(i, column));
      }
      models.add_row(std::move(row));
    }
  }
  models.write_file(directory / "power_models.csv");

  CsvTable measurements({"device", "router", "source", "window_begin",
                         "window_end", "median_w", "mean_w", "samples",
                         "rejected", "quality"});
  for (const MeasurementSummary& m : measurements_) {
    measurements.add_row({m.device_model, m.router_name,
                          std::string(to_string(m.source)),
                          std::to_string(m.window_begin),
                          std::to_string(m.window_end),
                          format_number(m.median_power_w, 3),
                          format_number(m.mean_power_w, 3),
                          std::to_string(m.sample_count),
                          std::to_string(m.rejected_count),
                          std::string(to_string(m.quality))});
  }
  measurements.write_file(directory / "measurements.csv");

  CsvTable observations({"router", "model", "psu", "capacity_w", "p_in_w",
                         "p_out_w"});
  for (const PsuObservation& o : psu_observations_) {
    observations.add_row({o.router_name, o.router_model,
                          std::to_string(o.psu_index),
                          format_number(o.capacity_w, 1),
                          format_number(o.input_power_w, 3),
                          format_number(o.output_power_w, 3)});
  }
  observations.write_file(directory / "psu_observations.csv");
}

PowerZoo PowerZoo::load(const std::filesystem::path& directory) {
  PowerZoo zoo;

  const CsvTable datasheets = CsvTable::read_file(directory / "datasheets.csv");
  for (std::size_t i = 0; i < datasheets.row_count(); ++i) {
    DatasheetRecord record;
    record.vendor = datasheets.cell(i, "vendor");
    record.model = datasheets.cell(i, "model");
    record.series = datasheets.cell(i, "series");
    record.typical_power_w = parse_opt(datasheets.cell(i, "typical_power_w"));
    record.max_power_w = parse_opt(datasheets.cell(i, "max_power_w"));
    record.max_bandwidth_gbps = parse_opt(datasheets.cell(i, "max_bandwidth_gbps"));
    if (const auto count = parse_opt(datasheets.cell(i, "psu_count"))) {
      record.psu_count = static_cast<int>(*count);
    }
    record.psu_capacity_w = parse_opt(datasheets.cell(i, "psu_capacity_w"));
    if (const auto year = parse_opt(datasheets.cell(i, "release_year"))) {
      record.release_year = static_cast<int>(*year);
    }
    zoo.add_datasheet(std::move(record));
  }

  const CsvTable models = CsvTable::read_file(directory / "power_models.csv");
  // Group rows by device, then feed each group through the model codec.
  std::map<std::string, std::pair<std::string, CsvTable>> grouped;
  for (std::size_t i = 0; i < models.row_count(); ++i) {
    const std::string device = models.cell(i, "device");
    auto [it, inserted] = grouped.try_emplace(
        device, models.cell(i, "contributor"),
        CsvTable({"row", "port", "transceiver", "rate", "P_base_W", "P_port_W",
                  "P_trx_in_W", "P_trx_up_W", "E_bit_pJ", "E_pkt_nJ",
                  "P_offset_W"}));
    std::vector<std::string> row;
    for (const char* column :
         {"row", "port", "transceiver", "rate", "P_base_W", "P_port_W",
          "P_trx_in_W", "P_trx_up_W", "E_bit_pJ", "E_pkt_nJ", "P_offset_W"}) {
      row.push_back(models.cell(i, column));
    }
    it->second.second.add_row(std::move(row));
  }
  for (const auto& [device, entry] : grouped) {
    zoo.add_power_model(device, model_from_csv(entry.second), entry.first);
  }

  const CsvTable measurements =
      CsvTable::read_file(directory / "measurements.csv");
  for (std::size_t i = 0; i < measurements.row_count(); ++i) {
    MeasurementSummary summary;
    summary.device_model = measurements.cell(i, "device");
    summary.router_name = measurements.cell(i, "router");
    const auto source = parse_measurement_source(measurements.cell(i, "source"));
    if (!source) throw std::invalid_argument("PowerZoo: bad measurement source");
    summary.source = *source;
    summary.window_begin =
        static_cast<SimTime>(measurements.cell_double(i, "window_begin"));
    summary.window_end =
        static_cast<SimTime>(measurements.cell_double(i, "window_end"));
    summary.median_power_w = measurements.cell_double(i, "median_w");
    summary.mean_power_w = measurements.cell_double(i, "mean_w");
    summary.sample_count =
        static_cast<std::size_t>(measurements.cell_double(i, "samples"));
    // Pre-campaign zoo directories lack the provenance columns; they loaded
    // as clean measurements then and still do.
    if (has_column(measurements, "rejected")) {
      summary.rejected_count =
          static_cast<std::size_t>(measurements.cell_int64(i, "rejected"));
    }
    if (has_column(measurements, "quality")) {
      const auto quality = parse_window_quality(measurements.cell(i, "quality"));
      if (!quality) throw std::invalid_argument("PowerZoo: bad quality flag");
      summary.quality = *quality;
    }
    zoo.add_measurement(std::move(summary));
  }

  const CsvTable observations =
      CsvTable::read_file(directory / "psu_observations.csv");
  for (std::size_t i = 0; i < observations.row_count(); ++i) {
    PsuObservation obs;
    obs.router_name = observations.cell(i, "router");
    obs.router_model = observations.cell(i, "model");
    obs.psu_index = static_cast<int>(observations.cell_double(i, "psu"));
    obs.capacity_w = observations.cell_double(i, "capacity_w");
    obs.input_power_w = observations.cell_double(i, "p_in_w");
    obs.output_power_w = observations.cell_double(i, "p_out_w");
    zoo.add_psu_observation(std::move(obs));
  }

  return zoo;
}

}  // namespace joules
