// Descriptive statistics over spans of doubles.
//
// The analyses use medians (Table 1 compares datasheet "typical" power with
// the *median* measured power), quantiles, and simple summaries; everything
// here is allocation-light and NaN-free for non-empty finite inputs.
#pragma once

#include <span>
#include <vector>

namespace joules {

double mean(std::span<const double> values);
double variance(std::span<const double> values);      // population variance
double stddev(std::span<const double> values);
double median(std::span<const double> values);
// Linear-interpolated quantile, q in [0, 1].
double quantile(std::span<const double> values, double q);
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);
double sum(std::span<const double> values);

// Pearson correlation coefficient; 0 if either side has zero variance.
double correlation(std::span<const double> x, std::span<const double> y);

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

}  // namespace joules
