#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace joules {
namespace {

void require_non_empty(std::span<const double> values, const char* what) {
  if (values.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty input");
  }
}

}  // namespace

double sum(std::span<const double> values) {
  // Kahan summation: network-scale aggregations add ~1e6 small samples.
  double total = 0.0;
  double compensation = 0.0;
  for (double v : values) {
    const double y = v - compensation;
    const double t = total + y;
    compensation = (t - total) - y;
    total = t;
  }
  return total;
}

double mean(std::span<const double> values) {
  require_non_empty(values, "mean");
  return sum(values) / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  require_non_empty(values, "variance");
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double quantile(std::span<const double> values, double q) {
  require_non_empty(values, "quantile");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double min_value(std::span<const double> values) {
  require_non_empty(values, "min_value");
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  require_non_empty(values, "max_value");
  return *std::max_element(values.begin(), values.end());
}

double correlation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("correlation: size mismatch");
  }
  require_non_empty(x, "correlation");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;  // joules-lint: allow(float-equality) — exact-zero variance guard before division
  return sxy / std::sqrt(sxx * syy);
}

Summary summarize(std::span<const double> values) {
  require_non_empty(values, "summarize");
  Summary s;
  s.count = values.size();
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = min_value(values);
  s.p25 = quantile(values, 0.25);
  s.median = median(values);
  s.p75 = quantile(values, 0.75);
  s.max = max_value(values);
  return s;
}

}  // namespace joules
