// Linear regression.
//
// The §5 methodology is regression-heavy: P_port and P_trx,up come from
// regressions over the interface-pair count N; E_bit and E_pkt come from a
// two-level regression (slope over bit rate r for each packet size L, then a
// regression of alpha_L * 8(L + L_header) over L). `LinearFit` is ordinary
// least squares with the diagnostics those derivations need.
#pragma once

#include <span>
#include <vector>

namespace joules {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;       // 1 for a perfect fit; 0 if y has no variance explained
  double slope_stderr = 0.0;    // standard error of the slope estimate
  std::size_t n = 0;

  // Predicted value at x.
  [[nodiscard]] double at(double x) const noexcept { return slope * x + intercept; }
};

// Ordinary least squares y = slope * x + intercept. Requires >= 2 points and
// non-constant x.
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

// Least squares through-origin fit y = slope * x (used for sanity checks).
double fit_proportional(std::span<const double> x, std::span<const double> y);

// Residuals y_i - fit(x_i).
std::vector<double> residuals(const LinearFit& fit, std::span<const double> x,
                              std::span<const double> y);

// Two-regressor OLS: y = a*x1 + b*x2 + c. Used by the *direct* E_bit/E_pkt
// estimator (fit power against aggregate bit AND packet rates in one step)
// as an alternative to the paper's two-step Eq. 17 derivation.
struct PlaneFit {
  double a = 0.0;         // coefficient of x1
  double b = 0.0;         // coefficient of x2
  double intercept = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;

  [[nodiscard]] double at(double x1, double x2) const noexcept {
    return a * x1 + b * x2 + intercept;
  }
};

// Requires >= 3 points and non-collinear regressors (throws otherwise).
PlaneFit fit_plane(std::span<const double> x1, std::span<const double> x2,
                   std::span<const double> y);

// Theil–Sen robust line: slope = median of pairwise slopes, intercept =
// median of (y - slope*x). Outlier-resistant — the right estimator for the
// scatter-heavy Fig. 2b trend where OLS chases the tail. O(n^2) pairs;
// intended for n up to a few thousand.
LinearFit fit_theil_sen(std::span<const double> x, std::span<const double> y);

}  // namespace joules
