#include "stats/regression.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace joules {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_linear: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("fit_linear: need at least 2 points");

  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  // joules-lint: allow(float-equality) — exact-zero variance guard
  if (sxx == 0.0) throw std::invalid_argument("fit_linear: x is constant");

  LinearFit fit;
  fit.n = x.size();
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - fit.at(x[i]);
    ss_res += e * e;
  }
  // joules-lint: allow(float-equality) — exact-zero variance guard
  fit.r_squared = (syy == 0.0) ? 1.0 : 1.0 - ss_res / syy;
  if (x.size() > 2) {
    fit.slope_stderr =
        std::sqrt(ss_res / (static_cast<double>(x.size()) - 2.0) / sxx);
  }
  return fit;
}

double fit_proportional(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_proportional: size mismatch");
  if (x.empty()) throw std::invalid_argument("fit_proportional: empty input");
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  // joules-lint: allow(float-equality) — exact-zero variance guard
  if (sxx == 0.0) throw std::invalid_argument("fit_proportional: x is all zero");
  return sxy / sxx;
}

std::vector<double> residuals(const LinearFit& fit, std::span<const double> x,
                              std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("residuals: size mismatch");
  std::vector<double> out;
  out.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out.push_back(y[i] - fit.at(x[i]));
  return out;
}


PlaneFit fit_plane(std::span<const double> x1, std::span<const double> x2,
                   std::span<const double> y) {
  if (x1.size() != x2.size() || x1.size() != y.size()) {
    throw std::invalid_argument("fit_plane: size mismatch");
  }
  const std::size_t n = x1.size();
  if (n < 3) throw std::invalid_argument("fit_plane: need at least 3 points");

  // Center the data, then solve the 2x2 normal equations for (a, b).
  const double m1 = mean(x1);
  const double m2 = mean(x2);
  const double my = mean(y);
  double s11 = 0.0;
  double s22 = 0.0;
  double s12 = 0.0;
  double s1y = 0.0;
  double s2y = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d1 = x1[i] - m1;
    const double d2 = x2[i] - m2;
    const double dy = y[i] - my;
    s11 += d1 * d1;
    s22 += d2 * d2;
    s12 += d1 * d2;
    s1y += d1 * dy;
    s2y += d2 * dy;
    syy += dy * dy;
  }
  const double det = s11 * s22 - s12 * s12;
  // Collinearity guard: determinant tiny relative to the regressor scales.
  // joules-lint: allow(float-equality) — exact-zero regressor guard
  if (s11 == 0.0 || s22 == 0.0 || std::fabs(det) < 1e-12 * s11 * s22) {
    throw std::invalid_argument("fit_plane: regressors are collinear");
  }

  PlaneFit fit;
  fit.n = n;
  fit.a = (s22 * s1y - s12 * s2y) / det;
  fit.b = (s11 * s2y - s12 * s1y) / det;
  fit.intercept = my - fit.a * m1 - fit.b * m2;

  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = y[i] - fit.at(x1[i], x2[i]);
    ss_res += e * e;
  }
  // joules-lint: allow(float-equality) — exact-zero variance guard
  fit.r_squared = (syy == 0.0) ? 1.0 : 1.0 - ss_res / syy;
  return fit;
}


LinearFit fit_theil_sen(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_theil_sen: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("fit_theil_sen: need at least 2 points");

  std::vector<double> slopes;
  slopes.reserve(x.size() * (x.size() - 1) / 2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = i + 1; j < x.size(); ++j) {
      if (x[j] == x[i]) continue;  // vertical pairs carry no slope information
      slopes.push_back((y[j] - y[i]) / (x[j] - x[i]));
    }
  }
  if (slopes.empty()) throw std::invalid_argument("fit_theil_sen: x is constant");

  LinearFit fit;
  fit.n = x.size();
  fit.slope = median(slopes);
  std::vector<double> intercepts;
  intercepts.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    intercepts.push_back(y[i] - fit.slope * x[i]);
  }
  fit.intercept = median(intercepts);

  // R^2 of the robust line (can be lower than the OLS line's by design).
  const double my = mean(y);
  double ss_res = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - fit.at(x[i]);
    ss_res += e * e;
    syy += (y[i] - my) * (y[i] - my);
  }
  // joules-lint: allow(float-equality) — exact-zero variance guard
  fit.r_squared = (syy == 0.0) ? 1.0 : 1.0 - ss_res / syy;
  return fit;
}

}  // namespace joules
