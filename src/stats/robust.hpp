// Robust window statistics for bench measurement campaigns.
//
// The §5 lab campaigns average wall power over long windows, assuming the
// bench behaves. Real benches do not: meters glitch (dropped samples, NaN
// readings, stuck channels), DUTs reboot or take an OS update mid-window, and
// fan steps put a ramp under the "steady" plateau. A single disturbed window
// silently poisons a whole regression, so before a window's mean is trusted
// it must pass two gates:
//
//   1. MAD outlier rejection — samples further than `mad_k` scaled median
//      absolute deviations from the window median are rejected (meter spikes,
//      NaN readings). MAD, unlike stddev, is not inflated by the outliers it
//      is trying to find.
//   2. Steadiness — the means of the two window halves must agree within a
//      drift limit (catches reboots, OS updates, fan steps: anything that
//      moves the plateau mid-window), the accepted-sample fraction must be
//      high enough (catches meter dropouts), and no implausibly long run of
//      bit-identical readings may appear (catches stuck channels; a live
//      meter's noise floor makes exact repeats rare).
//
// A window that fails a gate is *disturbed*: the caller retries it under a
// bounded budget rather than averaging garbage.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace joules {

// Raw median absolute deviation: median(|x - median(x)|). 0 for inputs with
// fewer than two samples. Consistent with stddev for normal data after
// scaling by 1.4826.
double median_absolute_deviation(std::span<const double> values);

inline constexpr double kMadToSigma = 1.4826;

struct RobustWindowOptions {
  // Reject samples with |x - median| > mad_k * 1.4826 * MAD. The default is
  // far outside anything the clean bench produces (meter noise is bounded,
  // control-plane jitter is ~1 W) but well inside meter spike magnitudes.
  double mad_k = 6.0;
  // Floor under the MAD rejection threshold, so a window where the meter
  // noise dominates (MAD of a few mW) does not reject benign samples.
  double min_reject_threshold_w = 2.5;
  // Split-window steadiness: |mean(second half) - mean(first half)| of the
  // accepted samples must stay under max(drift_limit_w, drift_limit_frac *
  // |median|). Clean benches shift by <~1.6 W (control-plane buckets).
  double drift_limit_w = 5.0;
  double drift_limit_frac = 0.02;
  // A window keeping fewer than this fraction of its expected samples (NaNs
  // and MAD rejections included) was disturbed, not merely noisy.
  double min_accept_frac = 0.8;
  // More than this many *consecutive, bit-identical* readings means a stuck
  // meter channel: additive noise makes exact repeats vanishingly rare.
  std::size_t max_stuck_run = 8;
};

struct WindowValidation {
  // Gate outcomes.
  bool steady = true;        // split-window drift gate
  bool stuck = false;        // implausible identical-reading run
  bool enough_samples = true;  // accepted/expected fraction gate
  double drift_w = 0.0;      // measured |mean(half2) - mean(half1)|
  std::size_t longest_identical_run = 0;

  std::size_t rejected = 0;  // NaN + MAD-rejected samples
  std::vector<double> accepted;  // surviving samples, original order

  // A window is usable when every gate passed; rejected samples alone do not
  // disqualify it (that is exactly what the MAD gate is for).
  [[nodiscard]] bool ok() const noexcept {
    return steady && !stuck && enough_samples;
  }
};

// Validates one measurement window. `expected_count` is the number of samples
// the meter should have delivered (dropouts show up as samples.size() <
// expected_count); pass samples.size() when dropouts cannot occur.
WindowValidation validate_window(std::span<const double> samples,
                                 std::size_t expected_count,
                                 const RobustWindowOptions& options = {});

}  // namespace joules
