#include "stats/robust.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"

namespace joules {
namespace {

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

}  // namespace

double median_absolute_deviation(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double med = median_of({values.begin(), values.end()});
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) deviations.push_back(std::abs(v - med));
  return median_of(std::move(deviations));
}

WindowValidation validate_window(std::span<const double> samples,
                                 std::size_t expected_count,
                                 const RobustWindowOptions& options) {
  WindowValidation out;

  // NaN/Inf readings are rejected before any statistic touches them.
  std::vector<double> finite;
  finite.reserve(samples.size());
  std::size_t identical_run = 1;
  double previous = 0.0;
  bool have_previous = false;
  for (const double v : samples) {
    if (!std::isfinite(v)) {
      ++out.rejected;
      continue;
    }
    if (have_previous && v == previous) {
      ++identical_run;
    } else {
      identical_run = 1;
    }
    out.longest_identical_run = std::max(out.longest_identical_run, identical_run);
    previous = v;
    have_previous = true;
    finite.push_back(v);
  }
  out.stuck = out.longest_identical_run > options.max_stuck_run;

  // MAD rejection around the window median.
  if (finite.size() >= 2) {
    const double med = median_of(finite);
    const double mad = median_absolute_deviation(finite);
    const double threshold = std::max(options.min_reject_threshold_w,
                                      options.mad_k * kMadToSigma * mad);
    out.accepted.reserve(finite.size());
    for (const double v : finite) {
      if (std::abs(v - med) > threshold) {
        ++out.rejected;
      } else {
        out.accepted.push_back(v);
      }
    }
  } else {
    out.accepted = std::move(finite);
  }

  // Dropout gate: a meter that delivered too few usable samples was not
  // healthy, whatever the survivors say.
  const double accept_frac =
      expected_count == 0
          ? 1.0
          : static_cast<double>(out.accepted.size()) /
                static_cast<double>(expected_count);
  out.enough_samples = accept_frac >= options.min_accept_frac;

  // Split-window steadiness over the accepted samples.
  if (out.accepted.size() >= 4) {
    const std::size_t half = out.accepted.size() / 2;
    const std::span<const double> all(out.accepted);
    const double first = mean(all.subspan(0, half));
    const double second = mean(all.subspan(half));
    out.drift_w = std::abs(second - first);
    const double med = median_of(out.accepted);
    const double limit =
        std::max(options.drift_limit_w, options.drift_limit_frac * std::abs(med));
    out.steady = out.drift_w <= limit;
  }

  return out;
}

}  // namespace joules
