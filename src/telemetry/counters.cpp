#include "telemetry/counters.hpp"

#include "util/units.hpp"

namespace joules {

void InterfaceCounters::accumulate(double in_rate_bps, double out_rate_bps,
                                   double in_rate_pps, double out_rate_pps,
                                   double seconds) noexcept {
  if (seconds <= 0.0) return;
  in_octets += static_cast<std::uint64_t>(bits_to_bytes(in_rate_bps) * seconds);
  out_octets += static_cast<std::uint64_t>(bits_to_bytes(out_rate_bps) * seconds);
  in_packets += static_cast<std::uint64_t>(in_rate_pps * seconds);
  out_packets += static_cast<std::uint64_t>(out_rate_pps * seconds);
}

CounterDelta rates_between(const InterfaceCounters& earlier,
                           const InterfaceCounters& later,
                           double seconds) noexcept {
  CounterDelta delta;
  if (seconds <= 0.0) return delta;
  if (later.in_octets < earlier.in_octets ||
      later.out_octets < earlier.out_octets ||
      later.in_packets < earlier.in_packets ||
      later.out_packets < earlier.out_packets) {
    return delta;  // counter reset (device reboot) — window unusable
  }
  const double octets =
      static_cast<double>((later.in_octets - earlier.in_octets) +
                          (later.out_octets - earlier.out_octets));
  const double packets =
      static_cast<double>((later.in_packets - earlier.in_packets) +
                          (later.out_packets - earlier.out_packets));
  delta.rate_bps = bytes_to_bits(octets) / seconds;
  delta.rate_pps = packets / seconds;
  delta.valid = true;
  return delta;
}

}  // namespace joules
