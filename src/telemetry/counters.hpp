// Interface counters, SNMP style.
//
// Routers expose monotonically increasing byte/packet counters per interface
// (IF-MIB ifHCInOctets and friends). The paper's 10-month dataset is 5-minute
// SNMP polls of those counters plus the PSU power MIB. `InterfaceCounters`
// accumulates traffic; `CounterDelta` converts two polls into the average
// bit/packet rates the power model consumes.
#pragma once

#include <cstdint>
#include <string>

#include "util/sim_clock.hpp"

namespace joules {

struct InterfaceCounters {
  std::uint64_t in_octets = 0;
  std::uint64_t out_octets = 0;
  std::uint64_t in_packets = 0;
  std::uint64_t out_packets = 0;

  // Accumulates `seconds` of traffic at the given *unidirectional* rates in
  // each direction (the simulation drives symmetric loads by default).
  void accumulate(double in_rate_bps, double out_rate_bps, double in_rate_pps,
                  double out_rate_pps, double seconds) noexcept;

  friend bool operator==(const InterfaceCounters&, const InterfaceCounters&) = default;
};

struct CounterDelta {
  double rate_bps = 0.0;  // both directions summed (the model's convention)
  double rate_pps = 0.0;
  bool valid = false;     // false on counter reset/wrap or non-positive window
};

// Average rates between two polls taken `seconds` apart. Detects counter
// resets (later < earlier) and flags them invalid instead of producing
// negative rates.
[[nodiscard]] CounterDelta rates_between(const InterfaceCounters& earlier,
                                         const InterfaceCounters& later,
                                         double seconds) noexcept;

}  // namespace joules
