// SNMP-style polling of a simulated router.
//
// Reproduces the paper's collection setup: every 5 minutes, read each
// interface's byte/packet counters and the PSU-reported power (when the
// model reports one). The poller integrates the offered workload between
// polls so counters advance like real ifHCInOctets, and rate estimates are
// window averages exactly as in the SNMP dataset.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "device/router.hpp"
#include "telemetry/counters.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace joules {

struct SnmpPollRecord {
  SimTime time = 0;
  std::optional<double> psu_power_w;        // PSU MIB total, if reported
  std::vector<InterfaceCounters> counters;  // one per router interface
  // GREEN-style per-PSU (P_in, P_out) readings (§9.4 recommends exporting
  // both so efficiency can be tracked over time; the paper's dataset only
  // carried P_in). Populated when the poller runs with green_telemetry on.
  std::vector<PsuSensorReading> psu_sensors;
};

// Offered *bidirectional summed* load per interface at a given time; the
// vector must match the router's interface count.
using LoadFunction = std::function<std::vector<InterfaceLoad>(SimTime)>;

inline constexpr SimTime kDefaultSnmpPeriod = 5 * kSecondsPerMinute;

class SnmpPoller {
 public:
  explicit SnmpPoller(SimTime period = kDefaultSnmpPeriod,
                      bool green_telemetry = false);

  // Polls `router` over [begin, end). Counters integrate the load at
  // `integration_step` resolution between polls.
  [[nodiscard]] std::vector<SnmpPollRecord> collect(
      const SimulatedRouter& router, const LoadFunction& loads, SimTime begin,
      SimTime end, SimTime integration_step = kSecondsPerMinute) const;

  // Derives the power trace from poll records (skipping non-reporting polls).
  [[nodiscard]] static TimeSeries power_trace(
      const std::vector<SnmpPollRecord>& records);

  // Per-interface rate trace between consecutive polls; invalid windows
  // (counter resets) are skipped.
  [[nodiscard]] static TimeSeries rate_trace_bps(
      const std::vector<SnmpPollRecord>& records, std::size_t interface_index);

  // Per-PSU efficiency trace (P_out / P_in, capped at 1) from GREEN-enabled
  // records; skips polls where the PSU reported no input power.
  [[nodiscard]] static TimeSeries efficiency_trace(
      const std::vector<SnmpPollRecord>& records, std::size_t psu_index);

  [[nodiscard]] SimTime period() const noexcept { return period_; }
  [[nodiscard]] bool green_telemetry() const noexcept { return green_telemetry_; }

 private:
  SimTime period_;
  bool green_telemetry_;
};

// Cosmetic-but-faithful MIB object names for dataset exports.
[[nodiscard]] std::string if_in_octets_oid(int if_index);
[[nodiscard]] std::string if_out_octets_oid(int if_index);
[[nodiscard]] std::string psu_power_oid(int psu_index);

}  // namespace joules
