#include "telemetry/snmp.hpp"

#include <algorithm>
#include <stdexcept>

namespace joules {

SnmpPoller::SnmpPoller(SimTime period, bool green_telemetry)
    : period_(period), green_telemetry_(green_telemetry) {
  if (period <= 0) throw std::invalid_argument("SnmpPoller: period must be positive");
}

std::vector<SnmpPollRecord> SnmpPoller::collect(
    const SimulatedRouter& router, const LoadFunction& loads, SimTime begin,
    SimTime end, SimTime integration_step) const {
  if (integration_step <= 0 || integration_step > period_) {
    throw std::invalid_argument("SnmpPoller: bad integration step");
  }
  const std::size_t n_interfaces = router.interfaces().size();
  std::vector<InterfaceCounters> counters(n_interfaces);
  std::vector<SnmpPollRecord> records;

  for (SimTime t = begin; t < end; t += period_) {
    // Integrate traffic since the previous poll (no-op on the first).
    if (t > begin) {
      for (SimTime step = t - period_; step < t; step += integration_step) {
        const std::vector<InterfaceLoad> load_vector = loads(step);
        if (load_vector.size() != n_interfaces) {
          throw std::invalid_argument("SnmpPoller: load vector size mismatch");
        }
        const double seconds = static_cast<double>(
            std::min(integration_step, t - step));
        for (std::size_t i = 0; i < n_interfaces; ++i) {
          // The model convention sums directions; split symmetrically for the
          // in/out counters.
          counters[i].accumulate(load_vector[i].rate_bps / 2.0,
                                 load_vector[i].rate_bps / 2.0,
                                 load_vector[i].rate_pps / 2.0,
                                 load_vector[i].rate_pps / 2.0, seconds);
        }
      }
    }

    SnmpPollRecord record;
    record.time = t;
    record.counters = counters;
    record.psu_power_w = router.reported_power_w(t, loads(t));
    if (green_telemetry_) {
      record.psu_sensors = router.sensor_snapshot(t, loads(t));
    }
    records.push_back(std::move(record));
  }
  return records;
}

TimeSeries SnmpPoller::power_trace(const std::vector<SnmpPollRecord>& records) {
  TimeSeries trace;
  for (const SnmpPollRecord& record : records) {
    if (record.psu_power_w.has_value()) trace.push(record.time, *record.psu_power_w);
  }
  return trace;
}

TimeSeries SnmpPoller::rate_trace_bps(const std::vector<SnmpPollRecord>& records,
                                      std::size_t interface_index) {
  TimeSeries trace;
  for (std::size_t i = 1; i < records.size(); ++i) {
    const double seconds =
        static_cast<double>(records[i].time - records[i - 1].time);
    const CounterDelta delta =
        rates_between(records[i - 1].counters.at(interface_index),
                      records[i].counters.at(interface_index), seconds);
    if (delta.valid) trace.push(records[i].time, delta.rate_bps);
  }
  return trace;
}

TimeSeries SnmpPoller::efficiency_trace(
    const std::vector<SnmpPollRecord>& records, std::size_t psu_index) {
  TimeSeries trace;
  for (const SnmpPollRecord& record : records) {
    if (psu_index >= record.psu_sensors.size()) continue;
    const PsuSensorReading& reading = record.psu_sensors[psu_index];
    if (reading.input_power_w <= 0.0) continue;
    trace.push(record.time,
               std::min(1.0, reading.output_power_w / reading.input_power_w));
  }
  return trace;
}

std::string if_in_octets_oid(int if_index) {
  return "IF-MIB::ifHCInOctets." + std::to_string(if_index);
}

std::string if_out_octets_oid(int if_index) {
  return "IF-MIB::ifHCOutOctets." + std::to_string(if_index);
}

std::string psu_power_oid(int psu_index) {
  return "ENTITY-SENSOR-MIB::entPhySensorValue.psu" + std::to_string(psu_index);
}

}  // namespace joules
