#include "traffic/generator.hpp"

#include <stdexcept>

#include "util/csv.hpp"
#include "util/units.hpp"

namespace joules {

double TrafficSpec::packet_rate_pps() const noexcept {
  if (rate_bps <= 0.0 || frame_bytes <= 0.0) return 0.0;
  return packet_rate_for_bit_rate(rate_bps, frame_bytes);
}

GeneratorTool tool_for_rate(double rate_bps) noexcept {
  return rate_bps >= gbps_to_bps(2.5) ? GeneratorTool::kIbSendBw
                                      : GeneratorTool::kIperf3Udp;
}

TrafficSpec make_cbr(double rate_bps, double frame_bytes) {
  if (rate_bps <= 0.0) throw std::invalid_argument("make_cbr: rate must be positive");
  if (frame_bytes < 64.0 || frame_bytes > 9216.0) {
    throw std::invalid_argument("make_cbr: frame size outside 64-9216 bytes");
  }
  TrafficSpec spec;
  spec.rate_bps = rate_bps;
  spec.frame_bytes = frame_bytes;
  spec.tool = tool_for_rate(rate_bps);
  return spec;
}

std::vector<TrafficSpec> rate_sweep(double min_rate_bps, double max_rate_bps,
                                    int steps, double frame_bytes) {
  if (steps < 2) throw std::invalid_argument("rate_sweep: need at least 2 steps");
  if (min_rate_bps <= 0.0 || max_rate_bps <= min_rate_bps) {
    throw std::invalid_argument("rate_sweep: invalid rate range");
  }
  std::vector<TrafficSpec> out;
  out.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) / (steps - 1);
    out.push_back(make_cbr(min_rate_bps + t * (max_rate_bps - min_rate_bps),
                           frame_bytes));
  }
  return out;
}

std::vector<double> default_frame_sizes() {
  // IMIX-style ladder covering the 64 B / 1500 B extremes the paper quotes.
  return {64, 128, 256, 512, 1024, 1500};
}

std::string describe(const TrafficSpec& spec) {
  std::string out = format_number(bps_to_gbps(spec.rate_bps), 3) + " Gbps, " +
                    format_number(spec.frame_bytes) + " B frames (";
  out += spec.tool == GeneratorTool::kIbSendBw ? "ib_send_bw" : "iperf3 -u";
  out += ")";
  return out;
}

}  // namespace joules
