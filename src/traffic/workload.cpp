#include "traffic/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/units.hpp"

namespace joules {
namespace {

// Deterministic per-(seed, t) standard-normal-ish noise via a hash.
double hash_noise(std::uint64_t seed, SimTime t) noexcept {
  std::uint64_t z = seed ^ (static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  // Sum of 4 uniforms, centered and scaled: approximately N(0,1) and cheap.
  double acc = 0.0;
  for (int i = 0; i < 4; ++i) {
    acc += static_cast<double>((z >> (i * 16)) & 0xffff) / 65535.0;
  }
  return (acc - 2.0) * std::sqrt(3.0);
}

}  // namespace

DiurnalWorkload::DiurnalWorkload(WorkloadParams params, SimTime origin,
                                 std::uint64_t seed) noexcept
    : params_(params), origin_(origin), seed_(seed) {}

double DiurnalWorkload::rate_bps(SimTime t) const noexcept {
  // Diurnal cycle: cosine peaking at `peak_hour_utc`.
  const double day_frac =
      static_cast<double>(seconds_of_day(t)) / static_cast<double>(kSecondsPerDay);
  const double peak_frac = params_.peak_hour_utc / 24.0;
  const double diurnal =
      1.0 + params_.diurnal_amplitude *
                std::cos(2.0 * std::numbers::pi * (day_frac - peak_frac));

  // Weekly cycle: Saturday/Sunday scaled by weekend_factor.
  const int dow = day_of_week(t);
  const double weekly = (dow >= 5) ? params_.weekend_factor : 1.0;

  // Slow growth around the origin.
  const double years =
      static_cast<double>(t - origin_) / (365.25 * kSecondsPerDay);
  const double growth = std::pow(1.0 + params_.annual_growth, years);

  // Multiplicative jitter, deterministic in t.
  const double jitter =
      1.0 + params_.jitter_frac * hash_noise(seed_, t / (5 * kSecondsPerMinute));

  return std::max(0.0, params_.mean_rate_bps * diurnal * weekly * growth * jitter);
}

double DiurnalWorkload::packet_rate_pps(SimTime t) const noexcept {
  return packet_rate_for_bit_rate(rate_bps(t), params_.mean_frame_bytes);
}

DiurnalWorkload::Sample DiurnalWorkload::sample(SimTime t) const noexcept {
  const double rate = rate_bps(t);
  return {rate, packet_rate_for_bit_rate(rate, params_.mean_frame_bytes)};
}

}  // namespace joules
