// RFC 8239 layer-2 snake tests (§5.1-5.2).
//
// In a snake test, the DUT's ports are cabled in pairs and the device is
// configured so that traffic injected by the orchestrator is looped through
// *every* interface before returning: with 2N ports, an offered load of r
// bps traverses all 2N interfaces, so each interface carries r in+out
// combined... more precisely, every interface forwards the full stream once
// in each direction it participates in. `SnakePlan` captures which ports are
// chained and what per-interface load an offered rate implies.
#pragma once

#include <cstddef>
#include <vector>

#include "traffic/generator.hpp"

namespace joules {

struct SnakePort {
  std::size_t port_index = 0;  // DUT port number
};

class SnakePlan {
 public:
  // Builds a snake over the first `port_count` ports (must be even and >= 2):
  // ports are cabled (0,1), (2,3), ... and VLAN-bridged so traffic entering
  // port 0 exits port 2N-1.
  static SnakePlan over_ports(std::size_t port_count);

  [[nodiscard]] std::size_t port_count() const noexcept { return port_count_; }
  [[nodiscard]] std::size_t pair_count() const noexcept { return port_count_ / 2; }

  // Cabled pairs (i, i+1).
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> cabling() const;

  // Per-interface bidirectional load when the orchestrator offers `spec`:
  // every port in the snake both receives and transmits the full stream, so
  // each interface sees 2x the offered rate (in + out), matching the paper's
  // convention that r_i sums both directions.
  [[nodiscard]] double per_interface_rate_bps(const TrafficSpec& spec) const noexcept;
  [[nodiscard]] double per_interface_packet_rate_pps(const TrafficSpec& spec) const noexcept;

 private:
  explicit SnakePlan(std::size_t port_count) : port_count_(port_count) {}
  std::size_t port_count_ = 0;
};

}  // namespace joules
