// Deployment traffic synthesis.
//
// The Switch network simulation needs 10 months of per-interface traffic that
// looks like an ISP's: a diurnal cycle (day peak, night trough), a weekly
// cycle (weekend dip), slow growth, and link-scale randomness.
// `DiurnalWorkload` produces the *offered load* on an interface at any
// SimTime; the telemetry layer turns that into SNMP counters.
//
// The workload is a pure function of time: sampling the same instant twice
// returns the same rate. This matters because the ground-truth power
// simulation and the model predictions must see identical loads.
#pragma once

#include <cstdint>

#include "util/sim_clock.hpp"

namespace joules {

struct WorkloadParams {
  double mean_rate_bps = 0.0;       // long-run average offered bit rate
  double diurnal_amplitude = 0.5;   // 0 = flat, 1 = full swing around the mean
  double weekend_factor = 0.7;      // weekend load relative to weekdays
  double jitter_frac = 0.05;        // multiplicative noise per sample
  double mean_frame_bytes = 800.0;  // average packet size on the wire
  double annual_growth = 0.2;       // traffic growth per year (fractional)
  int peak_hour_utc = 14;           // busiest hour of the day
};

class DiurnalWorkload {
 public:
  // `origin` anchors the growth trend (rate equals the configured mean there);
  // `seed` individualizes the jitter stream.
  DiurnalWorkload(WorkloadParams params, SimTime origin, std::uint64_t seed) noexcept;

  // Offered bit rate at `t` (both directions summed). Never negative.
  // Deterministic in `t`.
  [[nodiscard]] double rate_bps(SimTime t) const noexcept;

  // Implied packet rate at `t` given the configured mean frame size.
  [[nodiscard]] double packet_rate_pps(SimTime t) const noexcept;

  // Both rates from one evaluation of the shape. The packet rate is a pure
  // function of the bit rate, so calling `rate_bps` + `packet_rate_pps`
  // walks the diurnal/growth/jitter pipeline twice for the same numbers;
  // the network sweep's per-interface hot path uses this instead.
  // Bit-identical to calling the two accessors separately.
  struct Sample {
    double rate_bps = 0.0;
    double packet_rate_pps = 0.0;
  };
  [[nodiscard]] Sample sample(SimTime t) const noexcept;

  [[nodiscard]] const WorkloadParams& params() const noexcept { return params_; }

 private:
  WorkloadParams params_;
  SimTime origin_;
  std::uint64_t seed_;
};

}  // namespace joules
