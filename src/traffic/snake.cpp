#include "traffic/snake.hpp"

#include <stdexcept>

namespace joules {

SnakePlan SnakePlan::over_ports(std::size_t port_count) {
  if (port_count < 2 || port_count % 2 != 0) {
    throw std::invalid_argument("SnakePlan: port count must be even and >= 2");
  }
  return SnakePlan(port_count);
}

std::vector<std::pair<std::size_t, std::size_t>> SnakePlan::cabling() const {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(pair_count());
  for (std::size_t i = 0; i + 1 < port_count_; i += 2) {
    pairs.emplace_back(i, i + 1);
  }
  return pairs;
}

double SnakePlan::per_interface_rate_bps(const TrafficSpec& spec) const noexcept {
  return 2.0 * spec.rate_bps;
}

double SnakePlan::per_interface_packet_rate_pps(
    const TrafficSpec& spec) const noexcept {
  return 2.0 * spec.packet_rate_pps();
}

}  // namespace joules
