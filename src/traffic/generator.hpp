// Test-traffic generation (§5.1).
//
// The paper's orchestrator generates unidirectional constant-bit-rate traffic
// with ib_send_bw (2.5-100 Gbps) and iPerf3/UDP below that. For the
// simulation the only observable is the offered load: a bit rate and the
// implied packet rate for a chosen frame size. `TrafficSpec` captures one
// such offered load; `sweep` builds the rate ladders the §5 experiments use.
#pragma once

#include <string>
#include <vector>

namespace joules {

enum class GeneratorTool : std::uint8_t {
  kIbSendBw,  // >= 2.5 Gbps in the paper's lab
  kIperf3Udp, // below 2.5 Gbps
};

struct TrafficSpec {
  double rate_bps = 0.0;      // offered L1 bit rate, single direction
  double frame_bytes = 0.0;   // L2 frame size (payload + headers, pre-overhead)
  GeneratorTool tool = GeneratorTool::kIbSendBw;

  // Packets per second implied by the rate and frame size (wire overhead
  // included).
  [[nodiscard]] double packet_rate_pps() const noexcept;
};

// Chooses the tool the paper used for a given rate.
[[nodiscard]] GeneratorTool tool_for_rate(double rate_bps) noexcept;

// Builds a CBR spec, validating rate and frame size (Ethernet frames are
// 64-9216 bytes).
[[nodiscard]] TrafficSpec make_cbr(double rate_bps, double frame_bytes);

// Rate ladder for the Snake experiments: `steps` points spaced linearly from
// `min_rate_bps` up to `max_rate_bps` inclusive.
[[nodiscard]] std::vector<TrafficSpec> rate_sweep(double min_rate_bps,
                                                  double max_rate_bps,
                                                  int steps,
                                                  double frame_bytes);

// The frame-size ladder the E_bit/E_pkt derivation sweeps over.
[[nodiscard]] std::vector<double> default_frame_sizes();

[[nodiscard]] std::string describe(const TrafficSpec& spec);

}  // namespace joules
