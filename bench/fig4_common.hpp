// Shared pipeline for the Fig. 4 / Fig. 9 validation benches.
//
// Reconstructs the §6.2 method end to end:
//   1. deploy the Switch-like network and stage the events the paper
//      narrates for the 8201-32FH (Oct 9 transceiver removal, Oct 22-25
//      interface flap, Oct 31 interface additions) and the NCS's Sep 25
//      PSU re-calibration jump;
//   2. derive power models for the three device types in the simulated lab
//      (a *different physical unit* than the deployed one — PSU spread and
//      environment differences feed the offset);
//   3. for each sample instant produce the three traces: Autopower (external
//      meter on the true wall power), PSU (SNMP-reported), and the model
//      prediction from operator-visible inputs (inventory + counters).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "device/catalog.hpp"
#include "meter/power_meter.hpp"
#include "netpowerbench/derivation.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace joules::bench {

struct ValidationSetup {
  NetworkSimulation sim;
  SimTime begin = 0;                     // Sep 01
  SimTime end = 0;                       // Nov 05
  std::map<std::string, std::size_t> subject;      // model -> router index
  std::map<std::string, PowerModel> derived_model; // model -> lab-derived model
};

struct ValidationTraces {
  TimeSeries autopower;
  TimeSeries psu;    // empty when the model does not report
  TimeSeries model;
};

inline ValidationSetup make_validation_setup() {
  NetworkTopology topology = build_switch_like_network();
  const SimTime begin = topology.options.study_begin;

  // Subjects: the first deployed router of each Fig. 4 model.
  std::map<std::string, std::size_t> subject;
  for (const std::string model :
       {"8201-32FH", "NCS-55A1-24H", "N540X-8Z16G-SYS-A"}) {
    for (std::size_t r = 0; r < topology.routers.size(); ++r) {
      if (topology.routers[r].model == model &&
          topology.routers[r].decommissioned_at >
              begin + 70 * kSecondsPerDay &&
          topology.routers[r].commissioned_at < begin &&
          // joules-lint: allow(float-equality) — 0.0 is the exact "no override" sentinel
          topology.routers[r].psu_capacity_override_w == 0.0) {
        subject[model] = r;
        break;
      }
    }
  }

  // Stage the narrated 8201 interfaces BEFORE building the simulation: one
  // 400G FR4 that will be removed Oct 9, and two LR4s that appear Oct 31.
  const std::size_t r8201 = subject.at("8201-32FH");
  auto add_extra = [&](TransceiverKind kind, LineRate rate, double mean_gbps,
                       std::uint64_t seed) {
    DeployedInterface iface;
    iface.profile = {PortType::kQSFPDD, kind, rate};
    iface.name = "staged-" + std::to_string(topology.routers[r8201].interfaces.size());
    iface.transceiver_part = kind == TransceiverKind::kFR4 ? "QSFP-DD-400G-FR4"
                                                           : "QSFP28-100G-LR4";
    iface.external = true;
    iface.workload_seed = seed;
    iface.workload.mean_rate_bps = gbps_to_bps(mean_gbps);
    iface.workload.diurnal_amplitude = 0.5;
    iface.workload.mean_frame_bytes = 800;
    topology.routers[r8201].interfaces.push_back(iface);
    return static_cast<int>(topology.routers[r8201].interfaces.size()) - 1;
  };
  const int fr4_iface = add_extra(TransceiverKind::kFR4, LineRate::kG400, 18, 901);
  const int flap_iface = add_extra(TransceiverKind::kLR4, LineRate::kG100, 6, 902);
  const int added_a = add_extra(TransceiverKind::kLR4, LineRate::kG100, 4, 903);
  const int added_b = add_extra(TransceiverKind::kLR4, LineRate::kG100, 4, 904);

  // Spare transceivers left plugged into down ports ("to be used either as
  // spares or awaiting pick-up at the next PoP visit") — the paper's own
  // explanation for part of the model's underestimation. Spares never show
  // counters, so the §6.2 prediction pipeline cannot see them.
  auto add_spare = [&](std::size_t router, const ProfileKey& profile,
                       const char* part) {
    DeployedInterface iface;
    iface.profile = profile;
    iface.name = "spare-" +
                 std::to_string(topology.routers[router].interfaces.size());
    iface.transceiver_part = part;
    iface.external = false;
    iface.spare = true;
    topology.routers[router].interfaces.push_back(iface);
  };
  add_spare(r8201, {PortType::kQSFPDD, TransceiverKind::kFR4, LineRate::kG400},
            "QSFP-DD-400G-FR4");
  for (int i = 0; i < 3; ++i) {
    add_spare(subject.at("NCS-55A1-24H"),
              {PortType::kQSFP28, TransceiverKind::kLR4, LineRate::kG100},
              "QSFP28-100G-LR4");
  }
  add_spare(subject.at("N540X-8Z16G-SYS-A"),
            {PortType::kSFP, TransceiverKind::kBaseT, LineRate::kG1},
            "SFP-1G-T");

  ValidationSetup setup{NetworkSimulation(std::move(topology), 7), begin,
                        begin + 65 * kSecondsPerDay, subject, {}};

  // Oct 9 (~day 38): the 400G FR4 module is pulled. All traces drop by the
  // module's power; the model agrees because its counters disappear too.
  setup.sim.remove_transceiver_at(static_cast<int>(r8201), fr4_iface,
                                  begin + 38 * kSecondsPerDay);
  // Oct 22-25 (~days 51-54): flapping interface manually taken down. The
  // transceiver stays plugged, so reality drops less than the model thinks.
  StateOverride flap;
  flap.router = static_cast<int>(r8201);
  flap.iface = flap_iface;
  flap.from = begin + 51 * kSecondsPerDay;
  flap.to = begin + 54 * kSecondsPerDay;
  flap.state = InterfaceState::kPlugged;
  setup.sim.add_override(flap);
  // Oct 31 (~day 60): two interfaces are added (absent before).
  for (const int iface : {added_a, added_b}) {
    StateOverride not_yet;
    not_yet.router = static_cast<int>(r8201);
    not_yet.iface = iface;
    not_yet.from = begin - 400 * kSecondsPerDay;
    not_yet.to = begin + 60 * kSecondsPerDay;
    not_yet.state = InterfaceState::kEmpty;
    setup.sim.add_override(not_yet);
  }
  // Sep 25 (~day 24): installing the Autopower meter power-cycles the NCS's
  // PSUs; one sensor re-latches 7 W lower.
  setup.sim.device(subject.at("NCS-55A1-24H"))
      .add_reporting_shift(begin + 24 * kSecondsPerDay, -7.0);

  // --- Lab derivation per device type (separate physical unit!) -----------
  const std::map<std::string, std::vector<ProfileKey>> lab_profiles = {
      {"8201-32FH",
       {{PortType::kQSFPDD, TransceiverKind::kPassiveDAC, LineRate::kG100},
        {PortType::kQSFPDD, TransceiverKind::kLR4, LineRate::kG100},
        {PortType::kQSFPDD, TransceiverKind::kFR4, LineRate::kG400}}},
      {"NCS-55A1-24H",
       {{PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100},
        {PortType::kQSFP28, TransceiverKind::kLR4, LineRate::kG100},
        {PortType::kQSFP28, TransceiverKind::kSR4, LineRate::kG100}}},
      {"N540X-8Z16G-SYS-A",
       {{PortType::kSFP, TransceiverKind::kBaseT, LineRate::kG1},
        {PortType::kSFP, TransceiverKind::kLR, LineRate::kG1},
        {PortType::kSFPPlus, TransceiverKind::kLR, LineRate::kG10}}},
  };
  std::uint64_t lab_seed = 8800;
  for (const auto& [model, profiles] : lab_profiles) {
    SimulatedRouter dut(find_router_spec(model).value(), lab_seed);
    OrchestratorOptions lab;
    lab.start_time = make_time(2025, 1, 10);
    lab.measure_s = 900;
    lab.repeats = 3;
    Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, lab_seed + 1), lab);
    setup.derived_model.emplace(model,
                                derive_power_model(orchestrator, profiles).model);
    lab_seed += 7;
  }
  return setup;
}

// Produces the three traces for one subject, averaged into 30-minute windows
// like the paper's Fig. 4.
inline ValidationTraces validation_traces(const ValidationSetup& setup,
                                          const std::string& model,
                                          SimTime begin, SimTime end,
                                          SimTime sample_step = 30 * kSecondsPerMinute) {
  const std::size_t r = setup.subject.at(model);
  const PowerModel& derived = setup.derived_model.at(model);
  const PowerMeter autopower_meter(PowerMeterSpec{}, 0xA0 + r);

  ValidationTraces traces;
  for (SimTime t = begin; t < end; t += sample_step) {
    traces.autopower.push(
        t, autopower_meter.measure_w(0, setup.sim.wall_power_w(r, t), t));
    if (const auto reported = setup.sim.reported_power_w(r, t)) {
      traces.psu.push(t, *reported);
    }
    const VisibleInputs inputs = visible_inputs(setup.sim, r, t);
    traces.model.push(t, derived.predict(inputs.configs, inputs.loads).total_w());
  }
  return traces;
}

}  // namespace joules::bench
