// Table 3 — estimated savings from more efficient PSUs (§9.3.2), from using
// only one PSU (§9.3.4), and from both combined (§9.3.5).
#include <cstdio>

#include "bench_common.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "network/trace_engine.hpp"
#include "psu/optimization.hpp"
#include "util/ascii_chart.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  bench::banner("Table 3",
                "Using more efficient power supplies and using only one are "
                "promising vectors of energy savings.");

  const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime t = sim.topology().options.study_begin + 30 * kSecondsPerDay;
  TraceEngine engine(sim);
  const auto fleet = group_by_router(engine.psu_snapshot(t));

  // Paper's Table 3 percentages for the shape comparison.
  const std::map<EightyPlusLevel, std::pair<double, double>> paper = {
      {EightyPlusLevel::kBronze, {2, 5}},   {EightyPlusLevel::kSilver, {3, 6}},
      {EightyPlusLevel::kGold, {4, 7}},     {EightyPlusLevel::kPlatinum, {5, 7}},
      {EightyPlusLevel::kTitanium, {7, 9}},
  };

  std::vector<std::vector<std::string>> rows;
  CsvTable csv({"measure", "standard", "saved_w", "saved_pct", "paper_pct"});
  for (const EightyPlusLevel level : kAllEightyPlusLevels) {
    const SavingsResult upgrade = upgrade_to_standard(fleet, level);
    const SavingsResult both = consolidate_and_upgrade(fleet, level);
    rows.push_back({std::string(to_string(level)),
                    format_number(100.0 * upgrade.saved_frac(), 1) + "% (" +
                        format_number(upgrade.saved_w(), 0) + " W)",
                    format_number(paper.at(level).first, 0) + "%",
                    format_number(100.0 * both.saved_frac(), 1) + "% (" +
                        format_number(both.saved_w(), 0) + " W)",
                    format_number(paper.at(level).second, 0) + "%"});
    csv.add_row({"upgrade", std::string(to_string(level)),
                 format_number(upgrade.saved_w(), 0),
                 format_number(100.0 * upgrade.saved_frac(), 2),
                 format_number(paper.at(level).first, 0)});
    csv.add_row({"both", std::string(to_string(level)),
                 format_number(both.saved_w(), 0),
                 format_number(100.0 * both.saved_frac(), 2),
                 format_number(paper.at(level).second, 0)});
  }
  std::printf("%s\n", render_text_table({"80 Plus standard", "More efficient PSUs",
                                         "paper", "Both (one PSU + std)",
                                         "paper"},
                                        rows)
                          .c_str());

  const SavingsResult single = consolidate_to_single_psu(fleet);
  std::printf("  only one PSU (§9.3.4):     %.1f%% (%.0f W)   paper: 4%% (1002 W)\n",
              100.0 * single.saved_frac(), single.saved_w());
  csv.add_row({"single_psu", "", format_number(single.saved_w(), 0),
               format_number(100.0 * single.saved_frac(), 2), "4"});

  std::printf("\n  fleet: %zu routers, baseline input %.1f kW\n", fleet.size(),
              w_to_kw(single.baseline_input_w));
  std::puts("  shape check: savings grow monotonically Bronze->Titanium, and");
  std::puts("  the two measures roughly add up when combined.");
  bench::dump_csv(csv, "table3_psu_savings.csv");
  return 0;
}
