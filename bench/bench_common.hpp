// Shared plumbing for the table/figure benches: a standard header line, a
// paper-vs-measured row formatter, and a CSV dump directory so every bench's
// underlying series can be re-plotted externally.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "util/csv.hpp"

namespace joules::bench {

inline std::filesystem::path output_dir() {
  const std::filesystem::path dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

inline void dump_csv(const CsvTable& table, const std::string& name) {
  const auto path = output_dir() / name;
  table.write_file(path);
  std::printf("  [csv] %s\n", path.string().c_str());
}

inline void banner(const std::string& artifact, const std::string& caption) {
  std::printf("\n=== %s ===\n%s\n\n", artifact.c_str(), caption.c_str());
}

// "who wins / by how much" comparison line.
inline void compare_line(const std::string& label, double paper, double measured,
                         const std::string& unit) {
  std::printf("  %-38s paper %10s %-5s  measured %10s %s\n", label.c_str(),
              format_number(paper, 2).c_str(), unit.c_str(),
              format_number(measured, 2).c_str(), unit.c_str());
}

}  // namespace joules::bench
