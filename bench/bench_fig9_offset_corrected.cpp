// Figure 9 — zoomed, offset-corrected view of the Fig. 4 comparison: the
// model prediction is manually shifted to the Autopower level to show how
// precisely the *shape* matches (Sep 28 - Oct 07 window).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "fig4_common.hpp"
#include "stats/descriptive.hpp"
#include "util/ascii_chart.hpp"

using namespace joules;

int main() {
  bench::banner("Figure 9",
                "Zoomed Fig. 4 with the model manually offset to the Autopower "
                "level: the model is precise, just not accurate.");

  bench::ValidationSetup setup = bench::make_validation_setup();
  const SimTime zoom_begin = setup.begin + 27 * kSecondsPerDay;  // ~Sep 28
  const SimTime zoom_end = setup.begin + 36 * kSecondsPerDay;    // ~Oct 07

  CsvTable csv({"device", "time", "autopower_w", "model_offset_corrected_w"});
  for (const std::string model :
       {"8201-32FH", "NCS-55A1-24H", "N540X-8Z16G-SYS-A"}) {
    const bench::ValidationTraces traces = bench::validation_traces(
        setup, model, zoom_begin, zoom_end, 30 * kSecondsPerMinute);

    // The manual offset: mean difference over the zoom window.
    const double offset =
        mean(traces.autopower.values()) - mean(traces.model.values());
    const TimeSeries corrected = traces.model.shifted(offset);

    ChartOptions options;
    options.title = "Fig 9: " + model + "  (model shifted by " +
                    format_number(offset, 1) + " W)";
    options.y_label = "Power (W)";
    options.height = 14;
    std::printf("%s\n",
                render_time_series_chart(
                    {{"Autopower", traces.autopower}, {"Model+offset", corrected}},
                    options)
                    .c_str());

    // Precision after correction: residual RMS against the external trace.
    double ss = 0.0;
    for (std::size_t i = 0; i < corrected.size(); ++i) {
      const double e = corrected[i].value - traces.autopower[i].value;
      ss += e * e;
    }
    const double rms = std::sqrt(ss / static_cast<double>(corrected.size()));
    std::printf("  %-28s offset %+6.1f W, residual RMS %5.2f W, shape r = %.3f\n\n",
                model.c_str(), offset, rms,
                correlation(traces.autopower.values(), corrected.values()));

    for (std::size_t i = 0; i < corrected.size(); ++i) {
      csv.add_row({model, format_date_time(corrected[i].time),
                   format_number(traces.autopower[i].value, 2),
                   format_number(corrected[i].value, 2)});
    }
  }
  bench::dump_csv(csv, "fig9_offset_corrected.csv");
  return 0;
}
