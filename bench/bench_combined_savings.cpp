// Scenario — stacking the paper's saving vectors on ground truth.
//
// §10 lists the vectors separately; this bench applies them cumulatively to
// the same fleet and measures true wall power after each step:
//   1. link sleeping (§8),
//   2. unplugging spare transceivers (§7's "down is not off" inventory),
//   3. hot-standby PSUs (§9.4's proposal).
// Because each step lowers the DC draw feeding the next one, the stacked
// total is NOT the sum of the independent estimates — that interaction is
// exactly why a simulator (or a brave operator) is needed.
#include <cstdio>

#include "bench_common.hpp"
#include "network/trace_engine.hpp"
#include "network/whatif.hpp"
#include "sleep/hypnos.hpp"
#include "util/ascii_chart.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  bench::banner("Scenario: combined savings",
                "Link sleeping + spare-module removal + hot-standby PSUs, "
                "applied cumulatively to the same fleet.");

  NetworkSimulation planning_sim(build_switch_like_network(), 7);
  const SimTime begin = planning_sim.topology().options.study_begin;
  const SimTime eval_at = begin + 15 * kSecondsPerDay;

  // Plan the sleeping schedule on the untouched network.
  TraceEngine engine(planning_sim);
  const std::vector<double> loads = engine.average_link_loads_bps(
      begin, begin + 7 * kSecondsPerDay, 6 * kSecondsPerHour);
  const HypnosResult hypnos = run_hypnos(planning_sim.topology(), loads);

  Scenario scenario(NetworkSimulation(build_switch_like_network(), 7), eval_at);
  const double baseline = scenario.baseline_w();
  scenario.apply_link_sleeping(hypnos);
  scenario.remove_spare_transceivers();
  scenario.apply_hot_standby();

  std::vector<std::vector<std::string>> rows;
  CsvTable csv({"step", "network_power_w", "step_saving_w",
                "cumulative_saving_w", "cumulative_saving_pct"});
  for (const ScenarioStep& step : scenario.steps()) {
    rows.push_back({step.name, format_number(w_to_kw(step.network_power_w), 2) + " kW",
                    format_number(step.saved_w, 0) + " W",
                    format_number(step.saved_vs_baseline_w, 0) + " W",
                    format_number(100.0 * step.saved_vs_baseline_w / baseline, 2) +
                        " %"});
    csv.add_row({step.name, format_number(step.network_power_w, 1),
                 format_number(step.saved_w, 1),
                 format_number(step.saved_vs_baseline_w, 1),
                 format_number(100.0 * step.saved_vs_baseline_w / baseline, 3)});
  }
  std::printf("%s\n",
              render_text_table({"Step", "Network power", "Step saving",
                                 "Cumulative", "Cumulative %"},
                                rows)
                  .c_str());

  std::puts("  reading: the PSU measure dominates (as §9 concludes), sleeping");
  std::puts("  contributes its §8-scale sliver, and spare modules a bit more;");
  std::puts("  note hot-standby applied AFTER sleeping saves slightly less than");
  std::puts("  alone - the sleeping steps already lowered every PSU's load.");
  bench::dump_csv(csv, "combined_savings.csv");
  return 0;
}
