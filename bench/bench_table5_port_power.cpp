// Table 5 — P_port and P_trx,up per port type, as used by the §8 link
// sleeping evaluation. The paper obtains these by averaging its lab models
// per port type; this bench re-derives them by running the §5 methodology on
// every catalog device and averaging the derived values the same way, then
// prints both next to the published constants.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "netpowerbench/derivation.hpp"
#include "sleep/savings.hpp"
#include "util/ascii_chart.hpp"

using namespace joules;

int main() {
  bench::banner("Table 5",
                "P_port and P_trx,up per port type (averages over the derived "
                "power models), used by the link-sleeping evaluation.");

  // Derive one profile per (device, port type) across the lab fleet.
  std::map<PortType, std::vector<double>> port_w;
  std::map<PortType, std::vector<double>> trx_up_w;
  std::uint64_t seed = 31000;
  for (const RouterSpec& spec : all_router_specs()) {
    // One representative profile per port type of this device.
    std::map<PortType, ProfileKey> chosen;
    for (const InterfaceProfile& profile : spec.truth.profiles()) {
      chosen.emplace(profile.key.port, profile.key);
    }
    for (const auto& [port, key] : chosen) {
      SimulatedRouter dut(spec, seed);
      OrchestratorOptions lab;
      lab.start_time = make_time(2025, 3, 1);
      lab.measure_s = 600;
      lab.repeats = 2;
      Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, seed + 1), lab);
      seed += 3;
      if (orchestrator.max_pairs(key) < 2) {
        // The ladder regression needs at least two pair counts (e.g. the
        // N540's two 100G ports only make one pair).
        continue;
      }
      const Measurement base = orchestrator.run_base();
      const ProfileDerivation derivation =
          derive_profile(orchestrator, key, base.mean_power_w);
      port_w[port].push_back(derivation.profile.port_power_w);
      trx_up_w[port].push_back(derivation.profile.trx_up_power_w);
    }
  }

  const auto& paper = table5_port_power();
  std::vector<std::vector<std::string>> rows;
  CsvTable csv({"port_type", "P_port_W", "P_trx_up_W", "paper_P_port_W",
                "paper_P_trx_up_W", "models"});
  for (const PortType port : {PortType::kSFP, PortType::kSFPPlus,
                              PortType::kQSFP28, PortType::kQSFPDD}) {
    if (!port_w.contains(port)) continue;
    double port_avg = 0.0;
    double up_avg = 0.0;
    for (const double v : port_w[port]) port_avg += v;
    for (const double v : trx_up_w[port]) up_avg += v;
    port_avg /= static_cast<double>(port_w[port].size());
    up_avg /= static_cast<double>(trx_up_w[port].size());

    rows.push_back({std::string(to_string(port)), format_number(port_avg, 2),
                    format_number(paper.at(port).port_w, 2),
                    format_number(up_avg, 3),
                    format_number(paper.at(port).trx_up_w, 3),
                    std::to_string(port_w[port].size())});
    csv.add_row({std::string(to_string(port)), format_number(port_avg, 3),
                 format_number(up_avg, 4),
                 format_number(paper.at(port).port_w, 3),
                 format_number(paper.at(port).trx_up_w, 4),
                 std::to_string(port_w[port].size())});
  }
  std::printf("%s\n",
              render_text_table({"Port type", "P_port (derived)",
                                 "P_port (paper)", "P_trx,up (derived)",
                                 "P_trx,up (paper)", "#models"},
                                rows)
                  .c_str());

  std::puts("  shape check: QSFP-DD ports cost the most, SFP the least; the");
  std::puts("  derived averages depend on which devices carry each port type,");
  std::puts("  exactly as the paper's footnote 9 warns (P_port varies per model).");
  bench::dump_csv(csv, "table5_port_power.csv");
  return 0;
}
