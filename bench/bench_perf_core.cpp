// Performance microbenchmarks (google-benchmark) for the core library: model
// evaluation, the derivation regressions, Hypnos, and the network power
// sweep. These are ours (not a paper artifact) and guard against the bench
// harness becoming accidentally quadratic.
#include <benchmark/benchmark.h>

#include "device/catalog.hpp"
#include "model/power_model.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "sleep/hypnos.hpp"
#include "stats/regression.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

void BM_ModelPredict(benchmark::State& state) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  const ProfileKey dac{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  std::vector<InterfaceConfig> configs;
  std::vector<InterfaceLoad> loads;
  for (int i = 0; i < 24; ++i) {
    configs.push_back({"if" + std::to_string(i), dac, InterfaceState::kUp});
    loads.push_back({gbps_to_bps(10), 1e6});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.truth.predict(configs, loads).total_w());
  }
}
BENCHMARK(BM_ModelPredict);

void BM_RouterWallPower(benchmark::State& state) {
  SimulatedRouter router(find_router_spec("8201-32FH").value(), 1);
  const ProfileKey dac{PortType::kQSFPDD, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  for (int i = 0; i < 32; ++i) router.add_interface(dac, InterfaceState::kUp);
  const std::vector<InterfaceLoad> loads(32, {gbps_to_bps(20), 2e6});
  SimTime t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.wall_power_w(t, loads));
    t += 300;
  }
}
BENCHMARK(BM_RouterWallPower);

void BM_LinearRegression(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 2.0 * x[i] + rng.normal(0, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_linear(x, y).slope);
  }
}
BENCHMARK(BM_LinearRegression)->Arg(100)->Arg(10000);

void BM_NetworkPowerSample(benchmark::State& state) {
  static const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;
  SimTime t = begin;
  for (auto _ : state) {
    double total = 0.0;
    for (std::size_t r = 0; r < sim.router_count(); ++r) {
      total += sim.wall_power_w(r, t);
    }
    benchmark::DoNotOptimize(total);
    t += 300;
  }
}
BENCHMARK(BM_NetworkPowerSample);

void BM_Hypnos(benchmark::State& state) {
  static const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;
  static const std::vector<double> loads = average_link_loads_bps(
      sim, begin, begin + kSecondsPerDay, 6 * kSecondsPerHour);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_hypnos(sim.topology(), loads).sleeping_links);
  }
}
BENCHMARK(BM_Hypnos);

}  // namespace
}  // namespace joules

BENCHMARK_MAIN();
