// Performance microbenchmarks (google-benchmark) for the core library: model
// evaluation, the derivation regressions, Hypnos, the network power sweep,
// and the parallel trace engine. These are ours (not a paper artifact) and
// guard against the bench harness becoming accidentally quadratic.
//
// Unless the caller passes their own --benchmark_out, results are also
// written as JSON to bench_out/perf_core.json for machine comparison.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "autopower/fleet.hpp"
#include "autopower/server.hpp"
#include "device/catalog.hpp"
#include "model/power_model.hpp"
#include "net/fault.hpp"
#include "network/dataset.hpp"
#include "network/federated.hpp"
#include "network/simulation.hpp"
#include "network/trace_engine.hpp"
#include "network/whatif_engine.hpp"
#include "obs/registry.hpp"
#include "sleep/hypnos.hpp"
#include "stats/regression.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

// Publishes the registry's deterministic work counters into the benchmark's
// counter table, averaged per iteration. These — not wall time — are what
// tools/bench_compare gates on in CI: the counts are pure functions of the
// workload, so a committed baseline compares cleanly across runner hardware,
// and a counter that grows >1.5x means the code now does more work per
// sweep (accidental quadratic, lost skip path), which no amount of runner
// noise can excuse.
void export_obs_counters(benchmark::State& state,
                         const obs::Registry& registry) {
  if constexpr (obs::kEnabled) {
    for (const obs::CounterValue& counter : registry.counters()) {
      state.counters[std::string("obs_") + counter.name] = benchmark::Counter(
          static_cast<double>(counter.value), benchmark::Counter::kAvgIterations);
    }
  } else {
    (void)state;
    (void)registry;
  }
}

void BM_ModelPredict(benchmark::State& state) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  const ProfileKey dac{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  std::vector<InterfaceConfig> configs;
  std::vector<InterfaceLoad> loads;
  for (int i = 0; i < 24; ++i) {
    configs.push_back({"if" + std::to_string(i), dac, InterfaceState::kUp});
    loads.push_back({gbps_to_bps(10), 1e6});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.truth.predict(configs, loads).total_w());
  }
}
BENCHMARK(BM_ModelPredict);

void BM_RouterWallPower(benchmark::State& state) {
  SimulatedRouter router(find_router_spec("8201-32FH").value(), 1);
  const ProfileKey dac{PortType::kQSFPDD, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  for (int i = 0; i < 32; ++i) router.add_interface(dac, InterfaceState::kUp);
  const std::vector<InterfaceLoad> loads(32, {gbps_to_bps(20), 2e6});
  SimTime t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.wall_power_w(t, loads));
    t += 300;
  }
}
BENCHMARK(BM_RouterWallPower);

void BM_LinearRegression(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 2.0 * x[i] + rng.normal(0, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_linear(x, y).slope);
  }
}
BENCHMARK(BM_LinearRegression)->Arg(100)->Arg(10000);

void BM_NetworkPowerSample(benchmark::State& state) {
  static const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;
  SimTime t = begin;
  for (auto _ : state) {
    double total = 0.0;
    for (std::size_t r = 0; r < sim.router_count(); ++r) {
      total += sim.wall_power_w(r, t);
    }
    benchmark::DoNotOptimize(total);
    t += 300;
  }
}
BENCHMARK(BM_NetworkPowerSample);

void BM_Hypnos(benchmark::State& state) {
  static const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;
  static const std::vector<double> loads = average_link_loads_bps(
      sim, begin, begin + kSecondsPerDay, 6 * kSecondsPerHour);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_hypnos(sim.topology(), loads).sleeping_links);
  }
}
BENCHMARK(BM_Hypnos);

// The headline sweep: 14 days of the Switch-like network at 5-minute steps,
// on 1/2/4/8 workers. Results are bit-identical across the Arg values; only
// wall-clock should move (on multi-core hosts).
void BM_NetworkTraces(benchmark::State& state) {
  static const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;
  const SimTime end = begin + 14 * kSecondsPerDay;
  const auto workers = static_cast<std::size_t>(state.range(0));
  obs::Registry registry(workers);
  TraceEngineOptions options;
  options.workers = workers;
  options.registry = &registry;
  TraceEngine engine(sim, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.network_traces(begin, end, 300).total_power_w.size());
  }
  state.counters["steps"] =
      benchmark::Counter(14.0 * kSecondsPerDay / 300.0,
                         benchmark::Counter::kIsIterationInvariant);
  export_obs_counters(state, registry);
}
BENCHMARK(BM_NetworkTraces)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Builds (once per scale factor, cached for the process) the Switch-like
// network with every tier count multiplied by `scale`. scale=1 is the stock
// topology (~107 routers); scale=4 is production-scale (~428).
const NetworkSimulation& scaled_sim(int scale) {
  static std::map<int, NetworkSimulation> sims;
  const auto it = sims.find(scale);
  if (it != sims.end()) return it->second;
  TopologyOptions options;
  options.pop_count *= scale;
  options.access_asr920 *= scale;
  options.access_n540x *= scale;
  options.access_asr9001 *= scale;
  options.agg_n540 *= scale;
  options.agg_ncs24q6h *= scale;
  options.agg_ncs48q6h *= scale;
  options.core_ncs24h *= scale;
  options.core_nexus9336 *= scale;
  options.core_8201_32fh *= scale;
  options.core_8201_24h8fh *= scale;
  return sims
      .emplace(std::piecewise_construct, std::forward_as_tuple(scale),
               std::forward_as_tuple(build_switch_like_network(options), 7))
      .first->second;
}

// Scaling variant: 2 days at 5-minute steps across a router-count axis.
// Args are {workers, scale, reuse_quantum_s}: scale multiplies every tier
// count (x4 ~= 428 routers), and a non-zero quantum turns on the trace
// engine's incremental sweep (versioned sample-and-hold; see DESIGN.md).
// Guards the sweep's scaling in router count, and the quantum rows pin the
// skip path: obs_trace.samples_reused is floor-gated by bench_compare so a
// lost reuse path fails CI even though it only *adds* work.
void BM_NetworkTracesScaled(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const int scale = static_cast<int>(state.range(1));
  const auto quantum = static_cast<SimTime>(state.range(2));
  const NetworkSimulation& sim = scaled_sim(scale);
  const SimTime begin = sim.topology().options.study_begin;
  const SimTime end = begin + 2 * kSecondsPerDay;
  obs::Registry registry(workers);
  TraceEngineOptions options;
  options.workers = workers;
  options.registry = &registry;
  options.reuse_quantum_s = quantum;
  TraceEngine engine(sim, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.network_traces(begin, end, 300).total_power_w.size());
  }
  state.counters["routers"] = benchmark::Counter(
      static_cast<double>(sim.router_count()),
      benchmark::Counter::kIsIterationInvariant);
  export_obs_counters(state, registry);
}
BENCHMARK(BM_NetworkTracesScaled)
    ->Args({1, 1, 0})
    ->Args({4, 1, 0})
    ->Args({1, 4, 0})
    ->Args({2, 4, 0})
    ->Args({4, 4, 0})
    ->Args({8, 4, 0})
    ->Args({1, 4, 3600})
    ->Args({4, 4, 3600})
    ->Unit(benchmark::kMillisecond);

// Builds (once per shape, cached for the process) a federated multi-domain
// network. Args pick {domains, routers_per_pop}; pops_per_domain is fixed at
// 10, so router count = domains * 10 * routers_per_pop.
const NetworkSimulation& federated_sim(int domains, int routers_per_pop) {
  static std::map<std::pair<int, int>, NetworkSimulation> sims;
  const auto key = std::make_pair(domains, routers_per_pop);
  const auto it = sims.find(key);
  if (it != sims.end()) return it->second;
  FederatedTopologyOptions options;
  options.seed = 77;  // same pin as tests/network/scale_smoke_test.cpp
  options.domains = domains;
  options.pops_per_domain = 10;
  options.routers_per_pop = routers_per_pop;
  return sims
      .emplace(std::piecewise_construct, std::forward_as_tuple(key),
               std::forward_as_tuple(build_federated_network(options).network,
                                     7))
      .first->second;
}

// The federated scale axis: months of hourly samples over multi-domain
// topologies, streamed through the trace store's bounded block buffers.
// Args are {domains, routers_per_pop, months}. Two counters carry the
// scale-tier CI gate: obs_trace.blocks_streamed is floor-gated (the sweep
// must actually stream — a store bypass that materializes everything would
// report one giant block) and obs_trace.peak_resident_samples is
// ceiling-gated via bench_compare --max-prefix (peak resident sample memory
// is a function of the block budget, so *any* growth over the committed
// baseline means the bounded-memory contract broke).
void BM_NetworkTracesFederated(benchmark::State& state) {
  const int domains = static_cast<int>(state.range(0));
  const int routers_per_pop = static_cast<int>(state.range(1));
  const auto months = static_cast<SimTime>(state.range(2));
  const NetworkSimulation& sim = federated_sim(domains, routers_per_pop);
  const SimTime begin = sim.topology().options.study_begin;
  const SimTime end = begin + months * 30 * kSecondsPerDay;
  constexpr std::size_t kWorkers = 4;
  obs::Registry registry(kWorkers);
  TraceEngineOptions options;
  options.workers = kWorkers;
  options.registry = &registry;
  TraceEngine engine(sim, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.stream_traces(begin, end, kSecondsPerHour, {})
            .total_power_w.size());
  }
  state.counters["routers"] = benchmark::Counter(
      static_cast<double>(sim.router_count()),
      benchmark::Counter::kIsIterationInvariant);
  state.counters["interfaces"] = benchmark::Counter(
      static_cast<double>(sim.topology().interface_count()),
      benchmark::Counter::kIsIterationInvariant);
  export_obs_counters(state, registry);
}
BENCHMARK(BM_NetworkTracesFederated)
    ->Args({2, 6, 1})    // 120 routers — perf-smoke row
    ->Args({4, 12, 1})   // 480 routers — perf-smoke row
    ->Args({8, 63, 1})   // 5040 routers — the scale-smoke CI row
    ->Unit(benchmark::kMillisecond);

// A representative operator-console query stream against the incremental
// what-if engine: baseline, probe + commit a sleep batch, toggle PSU modes,
// unplug spares, decommission a PoP. The engine recomputes only the routers
// each mutation dirtied; obs_whatif.cache_hits is floor-gated by
// bench_compare (a lost cache path fails CI even though it only adds work),
// and obs_whatif.routers_recomputed is growth-gated so the invalidation
// never silently widens back to full recomputes.
void BM_WhatIfQueries(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const SimTime begin = scaled_sim(1).topology().options.study_begin;
  const std::vector<int> batch = {5, 6, 7, 8};
  obs::Registry registry(workers);
  for (auto _ : state) {
    WhatIfOptions options;
    options.workers = workers;
    options.registry = &registry;
    WhatIfEngine engine(NetworkSimulation(build_switch_like_network(), 7),
                        begin + 10 * kSecondsPerDay, options);
    engine.baseline_w();
    engine.probe_sleep_links(batch);
    engine.sleep_links(batch);
    engine.set_psu_mode(PsuMode::kHotStandby);
    engine.set_psu_mode(PsuMode::kActiveActive);
    engine.unplug_spares();
    engine.decommission_pop(3);
    benchmark::DoNotOptimize(engine.answers().back().network_power_w);
  }
  export_obs_counters(state, registry);
}
BENCHMARK(BM_WhatIfQueries)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// The fleet soak as a bench: 5000 faulty units against one reactor, with
// accept-drops, injected read stalls, silent units, and slow readers all
// active. The exported obs_server.* counters are interleaving-invariant by
// construction (see tests/autopower/fleet_soak_test.cpp for the maths), so
// bench_compare pins them exactly: shed growing means admission changed,
// batches_ingested growing means the idempotence/dedup path leaks work,
// samples_evicted moving means the retention window drifted.
// backpressure_stalls is the one scheduling-dependent count, so it is
// exported clamped to its guaranteed floor (one stall per slow reader) and
// floor-gated in CI — losing the backpressure path fails, noise cannot.
void BM_FleetSoak(benchmark::State& state) {
  constexpr std::size_t kUnits = 5000;
  constexpr std::size_t kCeiling = 4500;
  constexpr std::size_t kSilent = 32;
  constexpr std::size_t kSlow = 8;
  constexpr std::size_t kDuplicates = 1000;
  constexpr std::uint64_t kDropAccepts = 16;
  constexpr std::uint64_t kStalls = 8;

  autopower::Server::ConnectionStats stats;
  std::size_t units_known = 0;
  std::size_t acked = 0;
  for (auto _ : state) {
    // Fresh fault plan per iteration: accept indices count from zero again.
    FaultPlan plan;
    plan.drop_accepts(100, kDropAccepts);
    for (std::uint64_t i = 0; i < kStalls; ++i) {
      plan.stall_accept_reads(200 + i, Millis{50});
    }
    ScopedFaultPlan scoped(plan);

    autopower::ServerConfig config;
    config.max_connections = kCeiling;
    config.handshake_timeout = Millis{500};
    config.idle_timeout = Millis{60000};
    config.write_high_water = 2048;
    config.write_low_water = 512;
    config.socket_send_buffer = 2048;
    config.listen_backlog = 1024;
    config.max_samples_per_channel = 2;  // exercises the retention trims
    autopower::Server server(config);

    autopower::FleetConfig fleet;
    fleet.server_port = server.port();
    fleet.units = kUnits;
    fleet.uploads_per_unit = 1;
    fleet.samples_per_upload = 4;
    fleet.slow_reader_units = kSlow;
    fleet.silent_units = kSilent;
    fleet.duplicate_uploads = kDuplicates;
    fleet.hold_open = true;
    fleet.overall_timeout = Millis{120000};

    const autopower::FleetReport report = autopower::run_fleet(fleet);
    server.stop();
    stats = server.connection_stats();
    units_known = server.known_units().size();
    acked = report.acked_batches;
    benchmark::DoNotOptimize(acked);
  }
  // Snapshot of the (identical) final iteration — exact, not averaged.
  state.counters["obs_server.connections_accepted"] =
      static_cast<double>(stats.accepted);
  state.counters["obs_server.connections_shed"] =
      static_cast<double>(stats.shed);
  state.counters["obs_server.connections_evicted"] =
      static_cast<double>(stats.evicted);
  state.counters["obs_server.batches_ingested"] =
      static_cast<double>(stats.batches_ingested);
  state.counters["obs_server.samples_evicted"] =
      static_cast<double>(stats.samples_evicted);
  state.counters["obs_server.backpressure_stalls"] = static_cast<double>(
      std::min<std::uint64_t>(stats.backpressure_stalls, kSlow));
  state.counters["units_known"] = static_cast<double>(units_known);
  state.counters["acked_batches"] = static_cast<double>(acked);
}
BENCHMARK(BM_FleetSoak)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace joules

// BENCHMARK_MAIN, plus a default JSON dump to bench_out/perf_core.json when
// the caller did not choose their own --benchmark_out.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=bench_out/perf_core.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    std::filesystem::create_directories("bench_out");
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
