// Figure 4 — PSU measurements vs Autopower (external) measurements vs power
// model predictions, for three deployed routers over two months.
//
// Expected shapes (paper):
//   (a) 8201-32FH: PSU trace matches the external shape with a 15-20 W
//       offset; model matches the shape with a consistent underestimate;
//       Oct 9 module removal drops all traces; the Oct 22-25 flap makes the
//       model drop MORE than reality (the transceiver stayed plugged).
//   (b) NCS-55A1-24H: PSU trace is pseudo-constant with sharp jumps and a
//       -7 W re-latch on Sep 25; the model again tracks the external shape.
//   (c) N540X-8Z16G-SYS-A: no PSU trace at all (the model family does not
//       report power).
#include <cstdio>

#include "bench_common.hpp"
#include "fig4_common.hpp"
#include "stats/descriptive.hpp"
#include "util/ascii_chart.hpp"

using namespace joules;

int main() {
  bench::banner("Figure 4",
                "Comparison of PSU measurements, Autopower measurements, and "
                "power model predictions (30-minute averages).");

  bench::ValidationSetup setup = bench::make_validation_setup();

  const std::map<std::string, double> paper_model_offsets = {
      {"8201-32FH", 9.0}, {"NCS-55A1-24H", 13.0}, {"N540X-8Z16G-SYS-A", 3.0}};

  CsvTable csv({"device", "time", "autopower_w", "psu_w", "model_w"});
  for (const std::string model :
       {"8201-32FH", "NCS-55A1-24H", "N540X-8Z16G-SYS-A"}) {
    const bench::ValidationTraces traces =
        bench::validation_traces(setup, model, setup.begin, setup.end,
                                 2 * kSecondsPerHour);

    std::vector<std::pair<std::string, TimeSeries>> series = {
        {"Autopower", traces.autopower}, {"Model", traces.model}};
    if (!traces.psu.empty()) series.insert(series.begin() + 1, {"PSU", traces.psu});

    ChartOptions options;
    options.title = "Fig 4: " + model;
    options.y_label = "Power (W)";
    options.height = 16;
    std::printf("%s\n", render_time_series_chart(series, options).c_str());

    // Offsets: model vs external, PSU vs external.
    std::vector<double> model_offsets;
    std::vector<double> psu_offsets;
    for (std::size_t i = 0; i < traces.autopower.size(); ++i) {
      const SimTime t = traces.autopower[i].time;
      model_offsets.push_back(traces.autopower[i].value -
                              traces.model.value_at(t).value_or(0));
      if (const auto psu = traces.psu.value_at(t); psu && !traces.psu.empty()) {
        psu_offsets.push_back(*psu - traces.autopower[i].value);
      }
    }
    bench::compare_line(model + ": model underestimates by",
                        paper_model_offsets.at(model), mean(model_offsets), "W");
    if (!psu_offsets.empty()) {
      std::printf("  %-38s mean %+.1f W (sd %.1f)\n",
                  (model + ": PSU minus Autopower").c_str(), mean(psu_offsets),
                  stddev(psu_offsets));
    } else {
      std::printf("  %-38s (this model does not report PSU power)\n",
                  (model + ": PSU trace").c_str());
    }

    // Shape agreement: correlation between model and external traces.
    std::printf("  %-38s r = %.3f\n\n", (model + ": model/Autopower shape").c_str(),
                correlation(traces.autopower.values(), traces.model.values()));

    for (std::size_t i = 0; i < traces.autopower.size(); ++i) {
      const SimTime t = traces.autopower[i].time;
      const auto psu = traces.psu.value_at(t);
      csv.add_row({model, format_date_time(t),
                   format_number(traces.autopower[i].value, 2),
                   traces.psu.empty() || !psu ? "" : format_number(*psu, 2),
                   format_number(traces.model.value_at(t).value_or(0), 2)});
    }
  }

  std::puts("  event check (8201-32FH): Oct 09 module removal, Oct 22-25 flap");
  std::puts("  (model drops more than reality), Oct 31 interfaces added.");
  bench::dump_csv(csv, "fig4_validation.csv");
  return 0;
}
