// Table 6 — additional power models derived with the §5 methodology (the
// four lab-only devices: EdgeCore Wedge 100BF-32X, Cisco Nexus 93108TC-FX3P,
// Extreme VSP-4900, Cisco Catalyst 3560).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "model/model_io.hpp"
#include "netpowerbench/derivation.hpp"
#include "util/units.hpp"

using namespace joules;

namespace {

struct PlannedRun {
  const char* model;
  std::vector<ProfileKey> profiles;
};

std::vector<PlannedRun> planned_runs() {
  return {
      {"Wedge 100BF-32X",
       {{PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100},
        {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG50},
        {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG25}}},
      {"Nexus 93108TC-FX3P",
       {{PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100},
        {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG40},
        {PortType::kRJ45, TransceiverKind::kBaseT, LineRate::kG10},
        {PortType::kRJ45, TransceiverKind::kBaseT, LineRate::kG1}}},
      {"VSP-4900",
       {{PortType::kSFPPlus, TransceiverKind::kBaseT, LineRate::kG10}}},
      {"Catalyst 3560",
       {{PortType::kRJ45, TransceiverKind::kBaseT, LineRate::kM100}}},
  };
}

}  // namespace

int main() {
  bench::banner("Table 6",
                "Additional power models derived with the §5 methodology "
                "(derived = wall power; truth = catalog DC parameters).");

  CsvTable csv({"device", "port", "transceiver", "rate", "P_base_W", "P_port_W",
                "P_trx_in_W", "P_trx_up_W", "E_bit_pJ", "E_pkt_nJ",
                "P_offset_W"});

  std::uint64_t seed = 6100;
  for (const PlannedRun& run : planned_runs()) {
    const RouterSpec spec = find_router_spec(run.model).value();
    SimulatedRouter dut(spec, seed);
    OrchestratorOptions lab;
    lab.start_time = make_time(2025, 2, 15);
    lab.measure_s = 900;
    lab.repeats = 3;
    Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, seed + 1), lab);
    seed += 10;

    const DerivedModel derived = derive_power_model(orchestrator, run.profiles);
    std::printf("%s", render_model_table(std::string(run.model) + "  (derived)",
                                         derived.model)
                          .c_str());
    std::printf("%s\n",
                render_model_table(std::string(run.model) + "  (paper / truth)",
                                   spec.truth)
                    .c_str());

    for (const InterfaceProfile& p : derived.model.profiles()) {
      csv.add_row({run.model, std::string(to_string(p.key.port)),
                   std::string(to_string(p.key.transceiver)),
                   std::string(to_string(p.key.rate)),
                   format_number(derived.base_power_w, 1),
                   format_number(p.port_power_w, 3),
                   format_number(p.trx_in_power_w, 3),
                   format_number(p.trx_up_power_w, 3),
                   format_number(joules_to_picojoules(p.energy_per_bit_j), 2),
                   format_number(joules_to_nanojoules(p.energy_per_packet_j), 2),
                   format_number(p.offset_power_w, 3)});
    }
  }

  std::puts("  shape check: the Catalyst 3560's E_pkt dwarfs every modern");
  std::puts("  device (per-packet cost dominated on 2005-era hardware), and");
  std::puts("  the 10GBase-T ports of the 93108TC cost ~2 W each (P_port).");
  bench::dump_csv(csv, "table6_additional_models.csv");
  return 0;
}
