// Table 2 — power models derived with the §5 methodology for the four
// deployment-relevant devices.
//
// Runs the full NetPowerBench battery (Base/Idle/Port/Trx/Snake with the
// regression pipeline) against the four simulated DUTs and prints the
// derived parameters next to the paper's published rows. Derived values
// describe wall power, so static terms land a few percent above the DC-side
// truth — the same conversion-loss absorption the paper's models carry.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "model/model_io.hpp"
#include "netpowerbench/derivation.hpp"
#include "util/units.hpp"

using namespace joules;

namespace {

struct PlannedRun {
  const char* model;
  std::vector<ProfileKey> profiles;
};

std::vector<PlannedRun> planned_runs() {
  return {
      {"NCS-55A1-24H",
       {{PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100},
        {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG50},
        {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG25}}},
      {"Nexus9336-FX2",
       {{PortType::kQSFP28, TransceiverKind::kLR, LineRate::kG100},
        {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100}}},
      {"8201-32FH",
       {{PortType::kQSFPDD, TransceiverKind::kPassiveDAC, LineRate::kG100}}},
      {"N540X-8Z16G-SYS-A",
       {{PortType::kSFP, TransceiverKind::kBaseT, LineRate::kG1}}},
  };
}

}  // namespace

int main() {
  bench::banner("Table 2",
                "Example power models derived using the §5 methodology "
                "(derived = wall power; truth = catalog DC parameters).");

  CsvTable csv({"device", "port", "transceiver", "rate", "P_base_W", "P_port_W",
                "P_trx_in_W", "P_trx_up_W", "E_bit_pJ", "E_pkt_nJ",
                "P_offset_W"});

  std::uint64_t seed = 5100;
  for (const PlannedRun& run : planned_runs()) {
    const RouterSpec spec = find_router_spec(run.model).value();
    SimulatedRouter dut(spec, seed);
    OrchestratorOptions lab;
    lab.start_time = make_time(2025, 2, 1);
    lab.measure_s = 900;
    lab.repeats = 3;
    Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, seed + 1), lab);
    seed += 10;

    const DerivedModel derived = derive_power_model(orchestrator, run.profiles);
    std::printf("%s", render_model_table(std::string(run.model) + "  (derived)",
                                         derived.model)
                          .c_str());
    std::printf("%s\n", render_model_table(std::string(run.model) + "  (paper / truth)",
                                           spec.truth)
                            .c_str());
    if (run.model == std::string("N540X-8Z16G-SYS-A")) {
      std::puts("  note (paper's dagger): at 1G the traffic-induced power is so"
                " small that\n  E_bit/E_pkt are imprecise; the absolute dynamic"
                " error stays negligible.\n");
    }

    for (const InterfaceProfile& p : derived.model.profiles()) {
      csv.add_row({run.model, std::string(to_string(p.key.port)),
                   std::string(to_string(p.key.transceiver)),
                   std::string(to_string(p.key.rate)),
                   format_number(derived.base_power_w, 1),
                   format_number(p.port_power_w, 3),
                   format_number(p.trx_in_power_w, 3),
                   format_number(p.trx_up_power_w, 3),
                   format_number(joules_to_picojoules(p.energy_per_bit_j), 2),
                   format_number(joules_to_nanojoules(p.energy_per_packet_j), 2),
                   format_number(p.offset_power_w, 3)});
    }
  }

  bench::dump_csv(csv, "table2_power_models.csv");
  return 0;
}
