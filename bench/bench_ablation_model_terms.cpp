// Ablation — which terms of the §4 model earn their keep?
//
// Predicts a deployed NCS-55A1-24H's wall power over one month with:
//   full      the complete derived model,
//   -offset   P_offset zeroed,
//   -pkt      E_pkt zeroed (bit-rate-only dynamic term),
//   static    dynamic terms zeroed entirely,
//   datasheet the [16, 33] baseline (typical/max linear interpolation) —
//             the granularity the paper's related work had to settle for.
//
// Two error metrics against the external (Autopower-class) measurement:
// raw RMS (accuracy) and RMS after removing each variant's own mean offset
// (precision — the §6 criterion). The fine-grained terms matter for
// precision; the datasheet baseline is off by hundreds of watts no matter
// what, because "typical" datasheet power is not a power model.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "meter/power_meter.hpp"
#include "model/datasheet_model.hpp"
#include "netpowerbench/derivation.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "stats/descriptive.hpp"
#include "util/ascii_chart.hpp"

using namespace joules;

namespace {

struct VariantResult {
  std::string name;
  double raw_rms_w = 0.0;
  double centered_rms_w = 0.0;
  double mean_error_w = 0.0;
};

VariantResult evaluate(const std::string& name,
                       const std::vector<double>& truth,
                       const std::vector<double>& predicted) {
  VariantResult result;
  result.name = name;
  std::vector<double> errors(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    errors[i] = predicted[i] - truth[i];
  }
  result.mean_error_w = mean(errors);
  double ss = 0.0;
  double ss_centered = 0.0;
  for (const double e : errors) {
    ss += e * e;
    ss_centered += (e - result.mean_error_w) * (e - result.mean_error_w);
  }
  result.raw_rms_w = std::sqrt(ss / static_cast<double>(errors.size()));
  result.centered_rms_w =
      std::sqrt(ss_centered / static_cast<double>(errors.size()));
  return result;
}

PowerModel ablate(const PowerModel& model, bool drop_offset, bool drop_pkt,
                  bool drop_dynamic) {
  PowerModel out(model.base_power_w());
  for (InterfaceProfile profile : model.profiles()) {
    if (drop_offset || drop_dynamic) profile.offset_power_w = 0.0;
    if (drop_pkt || drop_dynamic) profile.energy_per_packet_j = 0.0;
    if (drop_dynamic) profile.energy_per_bit_j = 0.0;
    out.add_profile(profile);
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: model terms",
                "Prediction error of the full model vs reduced variants and "
                "the datasheet-interpolation baseline.");

  // Deployed subject + derived model (same pipeline as Fig. 4).
  const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;
  const SimTime end = begin + 30 * kSecondsPerDay;
  std::size_t subject = 0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    if (sim.topology().routers[r].model == "NCS-55A1-24H" &&
        // joules-lint: allow(float-equality) — 0.0 is the exact "no override" sentinel
        sim.topology().routers[r].psu_capacity_override_w == 0.0 &&
        sim.active(r, begin) && sim.active(r, end)) {
      subject = r;
      break;
    }
  }

  RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  SimulatedRouter lab_dut(spec, 4242);
  OrchestratorOptions lab;
  lab.start_time = make_time(2025, 1, 5);
  lab.measure_s = 900;
  Orchestrator orchestrator(lab_dut, PowerMeter(PowerMeterSpec{}, 4243), lab);
  const DerivedModel derived = derive_power_model(
      orchestrator,
      {{PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100},
       {PortType::kQSFP28, TransceiverKind::kLR4, LineRate::kG100},
       {PortType::kQSFP28, TransceiverKind::kSR4, LineRate::kG100}});

  DatasheetRecord record;
  record.typical_power_w = spec.datasheet_typical_w;
  record.max_power_w = spec.datasheet_max_w;
  record.max_bandwidth_gbps = spec.max_bandwidth_gbps;
  const auto baseline = DatasheetLinearModel::from_record(record).value();

  // Collect the traces.
  const PowerMeter external(PowerMeterSpec{}, 4321);
  std::vector<double> truth;
  std::map<std::string, std::vector<double>> predictions;
  const std::map<std::string, PowerModel> variants = {
      {"full", derived.model},
      {"-offset", ablate(derived.model, true, false, false)},
      {"-pkt", ablate(derived.model, false, true, false)},
      {"static", ablate(derived.model, false, false, true)},
  };
  for (SimTime t = begin; t < end; t += 2 * kSecondsPerHour) {
    truth.push_back(external.measure_w(0, sim.wall_power_w(subject, t), t));
    const VisibleInputs inputs = visible_inputs(sim, subject, t);
    for (const auto& [name, model] : variants) {
      predictions[name].push_back(
          model.predict(inputs.configs, inputs.loads).total_w());
    }
    double throughput = 0.0;
    for (const InterfaceLoad& load : inputs.loads) throughput += load.rate_bps / 2.0;
    predictions["datasheet"].push_back(baseline.predict_w(throughput));
  }

  std::vector<std::vector<std::string>> rows;
  CsvTable csv({"variant", "mean_error_w", "raw_rms_w", "centered_rms_w"});
  for (const std::string name : {"full", "-offset", "-pkt", "static", "datasheet"}) {
    const VariantResult result = evaluate(name, truth, predictions[name]);
    rows.push_back({result.name, format_number(result.mean_error_w, 2),
                    format_number(result.raw_rms_w, 2),
                    format_number(result.centered_rms_w, 3)});
    csv.add_row({result.name, format_number(result.mean_error_w, 3),
                 format_number(result.raw_rms_w, 3),
                 format_number(result.centered_rms_w, 4)});
  }
  std::printf("%s\n", render_text_table({"Variant", "Mean error (W)",
                                         "Raw RMS (W)", "Centered RMS (W)"},
                                        rows)
                          .c_str());
  std::puts("  reading: centered RMS (precision) degrades as terms are removed;");
  std::puts("  the datasheet baseline's raw error dwarfs every model variant.");
  bench::dump_csv(csv, "ablation_model_terms.csv");
  return 0;
}
