// Figure 1 — total power draw and traffic volume of the Switch network.
//
// Regenerates the two series of Fig. 1 over the figure's Sep-Oct window:
// total wall power of all routers (with the hardware (de)commissioning
// steps) and total carried traffic, annotated with the utilization
// percentages the paper prints on the right axis.
#include <cstdio>

#include "bench_common.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "network/trace_engine.hpp"
#include "obs/registry.hpp"
#include "stats/descriptive.hpp"
#include "util/ascii_chart.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  bench::banner("Figure 1",
                "Total power draw and traffic volume from all routers in the "
                "network of Switch, a Tier-2 ISP.");

  const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;  // Sep 01
  const SimTime end = begin + 55 * kSecondsPerDay;           // ~Oct 25

  // All cores; bit-identical to the serial sweep. The attached registry
  // records the sweep's work counters and writes the run manifest next to
  // the CSV (see `joulesctl obs bench_out/fig1_run_manifest.json`).
  ThreadPool pool;
  obs::Registry registry(pool.worker_count());
  TraceEngineOptions engine_options;
  engine_options.registry = &registry;
  engine_options.manifest_path = bench::output_dir() / "fig1_run_manifest.json";
  TraceEngine engine(sim, pool, engine_options);
  const NetworkTraces traces =
      engine.network_traces(begin, end, 2 * kSecondsPerHour);
  const TimeSeries power = traces.total_power_w.window_average(6 * kSecondsPerHour);
  const TimeSeries traffic =
      traces.total_traffic_bps.window_average(6 * kSecondsPerHour);

  ChartOptions options;
  options.title = "Fig 1 (top): total network power";
  options.y_label = "Power (W)";
  options.height = 14;
  std::printf("%s\n",
              render_time_series_chart({{"Total power", power}}, options).c_str());

  options.title = "Fig 1 (bottom): total network traffic";
  options.y_label = "Traffic (bps)";
  std::printf("%s\n",
              render_time_series_chart({{"Total traffic", traffic}}, options)
                  .c_str());

  const double mean_power = mean(power.values());
  const double min_traffic = min_value(traffic.values());
  const double max_traffic = max_value(traffic.values());
  bench::compare_line("mean total power", 21750, mean_power, "W");
  bench::compare_line("traffic range low", bps_to_tbps(1.0e12),
                      bps_to_tbps(min_traffic), "Tbps");
  bench::compare_line("traffic range high", bps_to_tbps(2.0e12),
                      bps_to_tbps(max_traffic), "Tbps");
  bench::compare_line("utilization low", 1.3,
                      100.0 * min_traffic / traces.capacity_bps, "%");
  bench::compare_line("utilization high", 2.7,
                      100.0 * max_traffic / traces.capacity_bps, "%");

  // The paper's note 2: power changes coincide with (de)commissioning.
  std::puts("\n  power steps in the window:");
  for (const DeployedRouter& router : sim.topology().routers) {
    if (router.decommissioned_at > begin && router.decommissioned_at < end) {
      std::printf("    %s decommissioned %s (power steps down)\n",
                  router.name.c_str(),
                  format_date(router.decommissioned_at).c_str());
    }
    if (router.commissioned_at > begin && router.commissioned_at < end) {
      std::printf("    %s commissioned %s (power steps up)\n",
                  router.name.c_str(), format_date(router.commissioned_at).c_str());
    }
  }

  // Headline §7 observation: power/traffic correlation invisible at network
  // scale.
  const double corr = correlation(power.values(), traffic.values());
  std::printf("\n  power-traffic correlation over the window: %.3f "
              "(paper: invisible at network scale)\n",
              corr);

  CsvTable csv({"time", "total_power_w", "total_traffic_bps"});
  for (std::size_t i = 0; i < power.size(); ++i) {
    csv.add_row({format_date_time(power[i].time), format_number(power[i].value, 1),
                 format_number(traffic[i].value, 0)});
  }
  bench::dump_csv(csv, "fig1_network_power_traffic.csv");
  if constexpr (obs::kEnabled) {
    std::printf("  [manifest] %s\n",
                engine_options.manifest_path.string().c_str());
  }
  return 0;
}
