// Ablation — §8's savings bracket vs what turning the links off *actually*
// saves in the simulator.
//
// The paper predicts link-sleeping savings as a bracket
// [sum P_port, sum (P_port + P_trx)] because nobody knows how much of a
// module's power goes away when its port goes down. The simulator knows:
// taking an interface to "down" keeps P_trx,in burning (the §7 finding), so
// ground truth should sit near the LOWER bound — "we postulate that the
// actual power savings will be closer to the lower end of our estimation."
// This bench applies the Hypnos result as interface-down overrides and
// measures the fleet's true wall-power delta.
#include <cstdio>

#include "bench_common.hpp"
#include "network/trace_engine.hpp"
#include "sleep/hypnos.hpp"
#include "sleep/savings.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  bench::banner("Ablation: link-sleeping estimator vs simulated truth",
                "Apply the Hypnos schedule to the network and measure the "
                "real wall-power delta.");

  NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;
  const SimTime eval_at = begin + 15 * kSecondsPerDay;

  TraceEngine engine(sim);
  const std::vector<double> loads = engine.average_link_loads_bps(
      begin, begin + 7 * kSecondsPerDay, 6 * kSecondsPerHour);
  const HypnosResult result = run_hypnos(sim.topology(), loads);

  double baseline = 0.0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    baseline += sim.wall_power_w(r, eval_at);
  }
  const SleepSavings estimate =
      estimate_sleep_savings(sim.topology(), result, baseline);

  // Apply: every sleeping link's two interfaces go admin-down. The modules
  // stay plugged — exactly what the §7 lab experiments observed.
  for (const int link_id : result.sleeping_links) {
    const InternalLink& link =
        sim.topology().links.at(static_cast<std::size_t>(link_id));
    for (const auto& [router, iface] :
         {std::pair{link.router_a, link.iface_a},
          std::pair{link.router_b, link.iface_b}}) {
      StateOverride down;
      down.router = router;
      down.iface = iface;
      down.from = begin;
      down.to = std::numeric_limits<SimTime>::max();
      down.state = InterfaceState::kPlugged;
      sim.add_override(down);
    }
  }
  double with_sleeping = 0.0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    with_sleeping += sim.wall_power_w(r, eval_at);
  }
  const double truth = baseline - with_sleeping;

  std::printf("  links put to sleep: %zu (%zu interfaces down)\n",
              result.sleeping_links.size(), estimate.interfaces_off);
  std::printf("  network power before / after: %.1f / %.1f kW\n\n",
              w_to_kw(baseline), w_to_kw(with_sleeping));
  bench::compare_line("estimator lower bound (P_port only)", estimate.min_w,
                      estimate.min_w, "W");
  bench::compare_line("estimator upper bound (+ full P_trx)", estimate.max_w,
                      estimate.max_w, "W");
  std::printf("  %-38s truth    %10.1f W  (%.2f%% of network power)\n",
              "simulated ground truth", truth, 100.0 * truth / baseline);

  const double position =
      (truth - estimate.min_w) / (estimate.max_w - estimate.min_w);
  std::printf("  %-38s %10.0f %% of the way from lower to upper bound\n",
              "where truth lands in the bracket", 100.0 * position);
  std::puts("\n  expectations:");
  std::puts("   - truth > lower bound: ports also shed P_trx,up, their dynamic");
  std::puts("     power, and a sliver of PSU conversion loss;");
  std::puts("   - truth << upper bound: P_trx,in keeps burning in every plugged");
  std::puts("     module - 'down' does not mean 'off'. The paper's postulate");
  std::puts("     ('closer to the lower end') is what the simulator shows.");
  std::puts("  note: the truth run keeps traffic on the surviving links but does");
  std::puts("  not charge the (tiny) rerouting E_bit cost to them.");

  CsvTable csv({"quantity", "watts"});
  csv.add_row({"baseline_w", format_number(baseline, 1)});
  csv.add_row({"with_sleeping_w", format_number(with_sleeping, 1)});
  csv.add_row({"estimate_min_w", format_number(estimate.min_w, 1)});
  csv.add_row({"estimate_max_w", format_number(estimate.max_w, 1)});
  csv.add_row({"truth_w", format_number(truth, 1)});
  bench::dump_csv(csv, "ablation_sleep_truth.csv");
  return 0;
}
