// Table 1 — the "typical" power reported by datasheets says little about the
// actual draw; the Cisco 8000 series even underestimates.
//
// Method, as in §3.3.2: take the SNMP power trace of each deployed router
// model over the study window, compute the median, and compare it with the
// datasheet's "typical" value (the corpus carries the same values the
// catalog's datasheets state). Routers whose telemetry is unusable fall back
// to external (Autopower-class) measurements, mirroring how the paper's
// medians were obtained for non-reporting devices.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "network/trace_engine.hpp"
#include "stats/descriptive.hpp"
#include "util/ascii_chart.hpp"
#include "util/units.hpp"

using namespace joules;

namespace {

// Paper's Table 1 rows: model -> (measured median W, datasheet typical W).
const std::map<std::string, std::pair<double, double>> kPaperRows = {
    {"NCS-55A1-24H", {358, 600}},    {"ASR-920-24SZ-M", {73, 110}},
    {"NCS-55A1-24Q6H-SS", {285, 400}}, {"NCS-55A1-48Q6H", {346, 460}},
    {"ASR-9001", {335, 425}},        {"N540-24Z8Q2C-M", {159, 200}},
    {"8201-32FH", {359, 288}},       {"8201-24H8FH", {296, 205}},
};

}  // namespace

int main() {
  bench::banner("Table 1",
                "The \"typical\" power reported by datasheets says little about "
                "the actual power draw. Some datasheets even underestimate.");

  const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;
  const SimTime end = begin + 30 * kSecondsPerDay;

  // Median measured power per model, across every deployed router of that
  // model (SNMP where reported, wall power otherwise). The engine computes
  // every router's median in one sharded sweep.
  TraceEngine engine(sim);
  const auto snmp_medians =
      engine.snmp_medians(begin, end, 2 * kSecondsPerHour);
  std::map<std::string, std::vector<double>> measured_by_model;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    const std::string& model = sim.topology().routers[r].model;
    if (!kPaperRows.contains(model)) continue;
    if (snmp_medians[r].has_value()) {
      measured_by_model[model].push_back(*snmp_medians[r]);
      continue;
    }
    // Non-reporting model: external measurement median.
    std::vector<double> wall;
    for (SimTime t = begin; t < end; t += 2 * kSecondsPerHour) {
      if (sim.active(r, t)) wall.push_back(sim.wall_power_w(r, t));
    }
    if (!wall.empty()) measured_by_model[model].push_back(median(wall));
  }

  std::vector<std::vector<std::string>> rows;
  CsvTable csv({"model", "measured_median_w", "datasheet_typical_w",
                "overestimate_pct", "paper_measured_w", "paper_datasheet_w",
                "paper_overestimate_pct"});
  for (const std::string model :
       {"NCS-55A1-24H", "ASR-920-24SZ-M", "NCS-55A1-24Q6H-SS", "NCS-55A1-48Q6H",
        "ASR-9001", "N540-24Z8Q2C-M", "8201-32FH", "8201-24H8FH"}) {
    const auto& [paper_measured, paper_datasheet] = kPaperRows.at(model);
    const RouterSpec spec = find_router_spec(model).value();
    const double datasheet = spec.datasheet_typical_w;
    const auto& samples = measured_by_model[model];
    if (samples.empty()) {
      std::printf("  (no deployed %s in the simulated network)\n", model.c_str());
      continue;
    }
    const double measured = median(samples);
    const double overestimate = 100.0 * (datasheet - measured) / datasheet;
    const double paper_overestimate =
        100.0 * (paper_datasheet - paper_measured) / paper_datasheet;
    rows.push_back({model, format_number(measured, 0) + " W",
                    format_number(datasheet, 0) + " W",
                    format_number(overestimate, 0) + " %",
                    format_number(paper_overestimate, 0) + " %"});
    csv.add_row({model, format_number(measured, 1), format_number(datasheet, 0),
                 format_number(overestimate, 1), format_number(paper_measured, 0),
                 format_number(paper_datasheet, 0),
                 format_number(paper_overestimate, 1)});
  }

  std::printf("%s\n",
              render_text_table({"Router model", "Measured median",
                                 "Datasheet \"typical\"", "Overestimate",
                                 "Paper overestimate"},
                                rows)
                  .c_str());

  std::puts("  shape check: datasheets overestimate by ~20-40% for the classic");
  std::puts("  platforms, and UNDERESTIMATE for both Cisco 8000-series models.");
  bench::dump_csv(csv, "table1_datasheet_vs_measured.csv");
  return 0;
}
