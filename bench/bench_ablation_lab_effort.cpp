// Ablation — how much lab time does the §5 methodology actually need?
//
// The paper's goal is a methodology "practical to derive" for operators.
// This bench sweeps the bench-time budget (measurement window x repeats x
// ladder size) and reports the error of the derived parameters against the
// hidden truth, plus the total lab hours consumed. The answer shapes how a
// replication should budget its bench.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "netpowerbench/derivation.hpp"
#include "util/ascii_chart.hpp"
#include "util/units.hpp"

using namespace joules;

namespace {

struct EffortLevel {
  const char* name;
  SimTime measure_s;
  int repeats;
  int rate_steps;
  std::vector<std::size_t> ladder;
};

}  // namespace

int main() {
  bench::banner("Ablation: lab effort vs model quality",
                "Derived-parameter error for increasing bench-time budgets "
                "(NCS-55A1-24H, DAC 100G).");

  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  const ProfileKey key{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  const InterfaceProfile truth = *spec.truth.find_profile(key);

  const std::vector<EffortLevel> levels = {
      {"smoke (2 min windows)", 120, 1, 3, {4, 12}},
      {"quick (5 min windows)", 300, 1, 4, {2, 6, 12}},
      {"standard (15 min x2)", 900, 2, 6, {}},
      {"thorough (30 min x3)", 1800, 3, 6, {}},
      {"exhaustive (1 h x4)", 3600, 4, 8, {}},
  };

  std::vector<std::vector<std::string>> rows;
  CsvTable csv({"level", "lab_hours", "port_err_pct", "trxin_err_w",
                "ebit_err_pct", "epkt_err_pct", "offset_err_w"});
  for (const EffortLevel& level : levels) {
    SimulatedRouter dut(spec, 0x1AB);
    OrchestratorOptions lab;
    lab.start_time = make_time(2025, 2, 1);
    lab.measure_s = level.measure_s;
    lab.repeats = level.repeats;
    Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 0x1AC), lab);

    DerivationOptions options;
    options.rate_steps = level.rate_steps;
    options.pair_ladder = level.ladder;
    const DerivedModel derived = derive_power_model(orchestrator, {key}, options);
    const InterfaceProfile got = *derived.model.find_profile(key);
    const double lab_hours =
        static_cast<double>(orchestrator.lab_time() - lab.start_time) /
        kSecondsPerHour;

    // Errors vs (wall-scaled) truth. The scaling is ~1/0.93 for this device;
    // fold it out using the derived/true base ratio so the residual reflects
    // measurement noise, not conversion.
    const double scale =
        derived.base_power_w /
        (spec.truth.base_power_w() + FanModel(spec.fan).power_w(22.0) +
         spec.control_plane_mean_w);
    auto pct = [&](double got_value, double truth_value) {
      return 100.0 * (got_value / scale - truth_value) / truth_value;
    };
    const double port_err = pct(got.port_power_w, truth.port_power_w);
    const double trxin_err = got.trx_in_power_w / scale - truth.trx_in_power_w;
    const double ebit_err = pct(got.energy_per_bit_j, truth.energy_per_bit_j);
    const double epkt_err =
        pct(got.energy_per_packet_j, truth.energy_per_packet_j);
    const double offset_err = got.offset_power_w / scale - truth.offset_power_w;

    rows.push_back({level.name, format_number(lab_hours, 1) + " h",
                    format_number(port_err, 1) + "%",
                    format_number(trxin_err, 3) + " W",
                    format_number(ebit_err, 1) + "%",
                    format_number(epkt_err, 1) + "%",
                    format_number(offset_err, 2) + " W"});
    csv.add_row({level.name, format_number(lab_hours, 2),
                 format_number(port_err, 2), format_number(trxin_err, 4),
                 format_number(ebit_err, 2), format_number(epkt_err, 2),
                 format_number(offset_err, 3)});
  }

  std::printf("%s\n",
              render_text_table({"Effort", "Lab time", "P_port err",
                                 "P_trx,in err", "E_bit err", "E_pkt err",
                                 "P_offset err"},
                                rows)
                  .c_str());
  std::puts("  reading: even the 'smoke' budget (~1 lab hour) recovers every");
  std::puts("  parameter to ~10% - the methodology is as practical as the paper");
  std::puts("  intends. The residual ~-10% on E_bit/E_pkt is SYSTEMATIC, not");
  std::puts("  noise: traffic increments convert at a better marginal PSU");
  std::puts("  efficiency than the idle base, so normalizing by the base's");
  std::puts("  wall/DC ratio over-corrects the dynamic terms. No bench time");
  std::puts("  removes it; it is part of the model's constant-efficiency");
  std::puts("  abstraction (the same family of effects behind the deployment");
  std::puts("  offset the paper reports).");
  bench::dump_csv(csv, "ablation_lab_effort.csv");
  return 0;
}
