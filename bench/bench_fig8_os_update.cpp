// Figure 8 — an OS upgrade on an 8201-32FH changed the thermal-management
// logic, raising fan speeds and total power by ~45 W (~+12%) with no other
// change (§4.3 / Appendix C).
#include <cstdio>

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "stats/descriptive.hpp"
#include "util/ascii_chart.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  bench::banner("Figure 8",
                "On March 13, an OS upgrade led to increased fan speeds and a "
                "+45 W (~+12%) step. Nothing else changed.");

  RouterSpec spec = find_router_spec("8201-32FH").value();
  SimulatedRouter router(spec, 31337);
  const ProfileKey dac{PortType::kQSFPDD, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  for (int i = 0; i < 16; ++i) router.add_interface(dac, InterfaceState::kUp);

  const SimTime update = make_time(2025, 3, 13);
  router.set_os_update_at(update);

  // PSU-reported trace over Mar 03 - Mar 24 (the figure's window).
  const SimTime begin = make_time(2025, 3, 3);
  const SimTime end = make_time(2025, 3, 24);
  TimeSeries reported;
  for (SimTime t = begin; t < end; t += kSecondsPerHour) {
    if (const auto value = router.reported_power_w(t)) reported.push(t, *value);
  }
  const TimeSeries smoothed = reported.window_average(6 * kSecondsPerHour);

  ChartOptions options;
  options.title = "Fig 8: 8201-32FH PSU-reported power across an OS update";
  options.y_label = "Power (W)";
  options.height = 14;
  std::printf("%s\n",
              render_time_series_chart({{"reported power", smoothed}}, options)
                  .c_str());

  const TimeSeries before = smoothed.slice(begin, update);
  const TimeSeries after = smoothed.slice(update + kSecondsPerDay, end);
  const double step_w = mean(after.values()) - mean(before.values());
  const double step_pct = 100.0 * step_w / mean(before.values());
  bench::compare_line("power step at the update", 45, step_w, "W");
  bench::compare_line("relative increase", 12, step_pct, "%");
  std::printf("  update date: %s\n", format_date(update).c_str());

  CsvTable csv({"time", "reported_power_w"});
  for (const Sample& s : smoothed) {
    csv.add_row({format_date_time(s.time), format_number(s.value, 1)});
  }
  bench::dump_csv(csv, "fig8_os_update.csv");
  return 0;
}
