// Figure 6 — PSU efficiency vs load scatter from the one-time sensor
// snapshot: the full fleet, then the three per-model panels (the NCS fares
// well, the 8201 badly, the ASR-920 spans the whole range).
#include <cstdio>

#include "bench_common.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "network/trace_engine.hpp"
#include "stats/descriptive.hpp"
#include "util/ascii_chart.hpp"
#include "util/units.hpp"

using namespace joules;

namespace {

ChartSeries scatter_of(const std::vector<PsuObservation>& snapshot,
                       const std::string& model_filter, char glyph) {
  ChartSeries series;
  series.name = model_filter.empty() ? "all PSUs" : model_filter;
  series.glyph = glyph;
  for (const PsuObservation& obs : snapshot) {
    if (!model_filter.empty() && obs.router_model != model_filter) continue;
    series.x.push_back(100.0 * obs.load_frac());
    series.y.push_back(100.0 * obs.efficiency());
  }
  return series;
}

void print_panel(const std::vector<PsuObservation>& snapshot,
                 const std::string& model, const std::string& subtitle) {
  const ChartSeries series = scatter_of(snapshot, model, '*');
  ChartOptions options;
  options.title = subtitle;
  options.y_label = "Efficiency (%)";
  options.x_label = "Power load (%)";
  options.height = 12;
  std::printf("%s\n", render_scatter({series}, options).c_str());
  if (!series.y.empty()) {
    std::printf("  %-22s n=%3zu  load %4.1f-%4.1f%%  efficiency %4.1f-%5.1f%% "
                "(median %.1f%%)\n\n",
                (model.empty() ? std::string("all") : model).c_str(),
                series.y.size(), min_value(series.x), max_value(series.x),
                min_value(series.y), max_value(series.y), median(series.y));
  }
}

}  // namespace

int main() {
  bench::banner("Figure 6",
                "PSU efficiencies span a large spectrum; some router models "
                "fare well, some badly, some vary.");

  const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime t = sim.topology().options.study_begin + 30 * kSecondsPerDay;
  TraceEngine engine(sim);
  const std::vector<PsuObservation> snapshot = engine.psu_snapshot(t);

  print_panel(snapshot, "", "Fig 6a: all PSU efficiency points");
  print_panel(snapshot, "NCS-55A1-24H", "Fig 6b: NCS-55A1-24H (fares well)");
  print_panel(snapshot, "8201-32FH", "Fig 6c: 8201-32FH (fares badly)");
  print_panel(snapshot, "ASR-920-24SZ-M", "Fig 6d: ASR-920-24SZ-M (varies)");

  // Shape checks against the §9.3.1 observations.
  std::vector<double> ncs;
  std::vector<double> fh;
  for (const PsuObservation& obs : snapshot) {
    if (obs.router_model == "NCS-55A1-24H") ncs.push_back(obs.efficiency());
    if (obs.router_model == "8201-32FH") fh.push_back(obs.efficiency());
  }
  bench::compare_line("NCS-55A1-24H efficiency floor", 85,
                      100.0 * min_value(ncs), "%");
  bench::compare_line("8201-32FH efficiency ceiling", 76, 100.0 * max_value(fh),
                      "%");

  CsvTable csv({"router", "model", "psu", "capacity_w", "p_in_w", "p_out_w",
                "load_pct", "efficiency_pct"});
  for (const PsuObservation& obs : snapshot) {
    csv.add_row({obs.router_name, obs.router_model, std::to_string(obs.psu_index),
                 format_number(obs.capacity_w, 0),
                 format_number(obs.input_power_w, 1),
                 format_number(obs.output_power_w, 1),
                 format_number(100.0 * obs.load_frac(), 2),
                 format_number(100.0 * obs.efficiency(), 2)});
  }
  bench::dump_csv(csv, "fig6_psu_snapshot.csv");
  return 0;
}
