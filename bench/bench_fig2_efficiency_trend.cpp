// Figure 2 — power-efficiency trends: ASIC level (2a) vs router datasheets
// (2b).
//
// 2a replots Broadcom's generation-over-generation switching-ASIC
// efficiency; 2b computes typical power per 100 Gbps from the 777-model
// datasheet corpus (typical power, max fallback; >100 Gbps only; release
// dates available for Cisco only; two ~300 W/100G outliers excluded from the
// plot, exactly as the paper does).
#include <cstdio>

#include <map>

#include "bench_common.hpp"
#include "datasheet/analysis.hpp"
#include "datasheet/corpus.hpp"
#include "datasheet/parser.hpp"
#include "datasheet/render.hpp"
#include "util/ascii_chart.hpp"

using namespace joules;

int main() {
  bench::banner("Figure 2",
                "The efficiency improvement trend, clearly visible at the ASIC "
                "level (2a), is not as obvious from router datasheets (2b).");

  // --- Fig 2a: ASIC trend -----------------------------------------------
  ChartSeries asic;
  asic.name = "Broadcom ASICs";
  asic.glyph = '#';
  for (const AsicEfficiencyPoint& point : broadcom_asic_trend()) {
    asic.x.push_back(point.year);
    asic.y.push_back(point.w_per_100g);
  }
  ChartOptions options;
  options.title = "Fig 2a: ASIC efficiency (W / 100 Gbps)";
  options.x_label = "release year";
  options.height = 12;
  options.y_axis_from_zero = true;
  std::printf("%s\n", render_line_chart({asic}, options).c_str());

  // --- Fig 2b: datasheet trend, via the full extraction pipeline ----------
  // Render each corpus record to messy text and re-extract it with the
  // parser (the paper's GPT-4o stage, 10% hallucination rate). A share of
  // the corpus is published as SERIES datasheets — one document covering
  // several models — exercising the §3.1 pain point end to end.
  const auto corpus = generate_corpus();
  ParserOptions parser_options;
  parser_options.hallucination_rate = 0.10;

  std::map<std::string, int> release_year_by_model;
  for (const DatasheetRecord& record : corpus) {
    if (record.release_year) release_year_by_model[record.model] = *record.release_year;
  }

  // Group a third of each series into shared documents.
  std::map<std::string, std::vector<DatasheetRecord>> series_docs;
  std::vector<DatasheetRecord> individual;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (!corpus[i].series.empty() && i % 3 == 0) {
      series_docs[corpus[i].vendor + "|" + corpus[i].series].push_back(corpus[i]);
    } else {
      individual.push_back(corpus[i]);
    }
  }

  std::vector<DatasheetRecord> extracted;
  std::size_t series_documents = 0;
  for (const auto& [key, models] : series_docs) {
    ++series_documents;
    const std::string text = render_series_datasheet(models, series_documents);
    for (ParsedDatasheet& parsed :
         parse_series_datasheet(text, parser_options)) {
      extracted.push_back(std::move(parsed.record));
    }
  }
  for (std::size_t i = 0; i < individual.size(); ++i) {
    ParsedDatasheet parsed =
        parse_datasheet(render_datasheet(individual[i], i), parser_options);
    extracted.push_back(std::move(parsed.record));
  }
  // Release dates were collected manually in the paper, not by the LLM.
  for (DatasheetRecord& record : extracted) {
    const auto it = release_year_by_model.find(record.model);
    if (it != release_year_by_model.end()) record.release_year = it->second;
  }
  std::printf("  extraction: %zu series documents + %zu individual datasheets"
              " -> %zu records\n",
              series_documents, individual.size(), extracted.size());

  const auto points = efficiency_points(extracted);
  const auto plotted = plot_points(points);
  const auto outliers = plot_outliers(points);

  ChartSeries datasheet_series;
  datasheet_series.name = "router datasheets";
  datasheet_series.glyph = '*';
  for (const EfficiencyPoint& point : plotted) {
    datasheet_series.x.push_back(point.year);
    datasheet_series.y.push_back(point.w_per_100g);
  }
  options.title = "Fig 2b: datasheet efficiency (W / 100 Gbps)";
  std::printf("%s\n", render_scatter({datasheet_series}, options).c_str());

  std::printf("  qualifying models (>100G, dated): %zu; plotted %zu; "
              "outliers excluded: %zu\n",
              points.size(), plotted.size(), outliers.size());
  for (const EfficiencyPoint& point : outliers) {
    std::printf("    excluded outlier: %s (%d) at %.0f W/100G\n",
                point.model.c_str(), point.year, point.w_per_100g);
  }

  const LinearFit system_fit = efficiency_trend_fit(plotted);
  std::vector<EfficiencyPoint> asic_points;
  for (const AsicEfficiencyPoint& point : broadcom_asic_trend()) {
    asic_points.push_back({point.year, point.w_per_100g, point.generation});
  }
  const LinearFit asic_fit = efficiency_trend_fit(asic_points);
  std::printf("\n  ASIC trend:      slope %+.2f W/100G per year, R2 %.2f\n",
              asic_fit.slope, asic_fit.r_squared);
  std::printf("  datasheet trend: slope %+.2f W/100G per year, R2 %.2f "
              "(paper: trend buried in scatter)\n",
              system_fit.slope, system_fit.r_squared);
  // Robust check: Theil-Sen ignores the scatter tail OLS chases. If even the
  // robust slope is shallow, the "no obvious trend" conclusion is solid.
  {
    std::vector<double> years;
    std::vector<double> efficiencies;
    for (const EfficiencyPoint& point : plotted) {
      years.push_back(point.year);
      efficiencies.push_back(point.w_per_100g);
    }
    const LinearFit robust = fit_theil_sen(years, efficiencies);
    std::printf("  robust (Theil-Sen) datasheet slope: %+.2f W/100G per year\n",
                robust.slope);
  }

  std::puts("\n  yearly medians (datasheets):");
  for (const YearlyEfficiency& year : yearly_medians(plotted)) {
    std::printf("    %d: %6.1f W/100G over %zu models\n", year.year,
                year.median_w_per_100g, year.models);
  }

  CsvTable csv({"year", "w_per_100g", "model"});
  for (const EfficiencyPoint& point : points) {
    csv.add_row({std::to_string(point.year), format_number(point.w_per_100g, 2),
                 point.model});
  }
  bench::dump_csv(csv, "fig2b_datasheet_efficiency.csv");
  return 0;
}
