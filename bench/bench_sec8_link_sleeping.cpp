// §8 — power savings of link sleeping: Hypnos over one month of traffic,
// converted to watts with the refined power model (Table 5 P_port constants
// + datasheet transceiver values, P_trx,up ∈ [0, P_trx]).
//
// Paper result: 80-390 W, i.e. 0.4-1.9% of the total router power — far
// below the "a third of the transceiver power" the original Hypnos paper
// hoped for, because (i) "down" does not power modules off and (ii) half of
// the interfaces are external and cannot sleep.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "network/trace_engine.hpp"
#include "sleep/hypnos.hpp"
#include "sleep/savings.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  bench::banner("Section 8",
                "Power savings of link sleeping: smaller than anticipated in "
                "the literature.");

  const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;
  const SimTime end = begin + 30 * kSecondsPerDay;

  TraceEngine engine(sim);
  const std::vector<double> loads =
      engine.average_link_loads_bps(begin, end, 3 * kSecondsPerHour);
  const HypnosResult result = run_hypnos(sim.topology(), loads);

  double network_power = 0.0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    network_power += sim.wall_power_w(r, begin + 15 * kSecondsPerDay);
  }
  const SleepSavings savings =
      estimate_sleep_savings(sim.topology(), result, network_power);

  std::printf("  Hypnos run over %s .. %s\n", format_date(begin).c_str(),
              format_date(end).c_str());
  std::printf("  internal links: %zu, put to sleep: %zu (%.0f%%; the original "
              "paper saw ~1/3)\n",
              result.candidate_links, result.sleeping_links.size(),
              100.0 * result.fraction_off());
  std::printf("  network power reference: %.1f kW\n\n", w_to_kw(network_power));

  bench::compare_line("savings, lower bound", 80, savings.min_w, "W");
  bench::compare_line("savings, upper bound", 390, savings.max_w, "W");
  bench::compare_line("savings %, lower", 0.4, 100.0 * savings.min_frac(), "%");
  bench::compare_line("savings %, upper", 1.9, 100.0 * savings.max_frac(), "%");

  const std::size_t external = sim.topology().external_interface_count();
  const std::size_t total = sim.topology().interface_count();
  std::printf("\n  structural limits (paper: 51%% of interfaces external, 52%% "
              "of transceiver power):\n");
  std::printf("    external interfaces: %zu of %zu (%.0f%%) - not sleepable by "
              "intra-domain protocols\n",
              external, total, 100.0 * static_cast<double>(external) / static_cast<double>(total));
  std::puts("    the lower bound assumes transceivers stay fully powered when");
  std::puts("    ports go down, which is what the lab models observed (P_trx,in");
  std::puts("    dominates for optics). Expect reality near the lower bound.");

  CsvTable csv({"link_id", "asleep", "avg_load_bps", "final_load_bps"});
  for (std::size_t l = 0; l < loads.size(); ++l) {
    const bool asleep =
        std::find(result.sleeping_links.begin(), result.sleeping_links.end(),
                  static_cast<int>(l)) != result.sleeping_links.end();
    csv.add_row({std::to_string(l), asleep ? "1" : "0",
                 format_number(loads[l], 0),
                 format_number(result.final_loads_bps[l], 0)});
  }
  bench::dump_csv(csv, "sec8_link_sleeping.csv");
  return 0;
}
