// Figure 5 — the PFE600-12-054xA efficiency curve with the 80 Plus standard
// set points.
#include <cstdio>

#include "bench_common.hpp"
#include "psu/eighty_plus.hpp"
#include "util/ascii_chart.hpp"

using namespace joules;

int main() {
  bench::banner("Figure 5",
                "Efficiency curve of the Platinum-rated PFE600-12-054xA (the "
                "Wedge 100BF-32X PSU) and the 80 Plus set points.");

  const EfficiencyCurve& curve = pfe600_curve();

  ChartSeries curve_series;
  curve_series.name = "PFE600";
  curve_series.glyph = '*';
  for (int load = 1; load <= 100; ++load) {
    curve_series.x.push_back(load);
    curve_series.y.push_back(100.0 * curve.at(load / 100.0));
  }

  std::vector<ChartSeries> series = {curve_series};
  static constexpr char kGlyphs[] = {'B', 'S', 'G', 'P', 'T'};
  int index = 0;
  for (const EightyPlusLevel level : kAllEightyPlusLevels) {
    ChartSeries marks;
    marks.name = std::string(to_string(level));
    marks.glyph = kGlyphs[index++];
    for (const SetPoint& point : set_points(level)) {
      marks.x.push_back(100.0 * point.load_frac);
      marks.y.push_back(100.0 * point.min_efficiency);
    }
    series.push_back(std::move(marks));
  }

  ChartOptions options;
  options.title = "Fig 5: PSU efficiency vs load";
  options.y_label = "Efficiency (%)";
  options.x_label = "Power load (%)";
  options.height = 18;
  std::printf("%s\n", render_scatter(series, options).c_str());

  bench::compare_line("efficiency @ 20% load", 90, 100.0 * curve.at(0.20), "%");
  bench::compare_line("efficiency @ 50% load", 94, 100.0 * curve.at(0.50), "%");
  bench::compare_line("efficiency @ 100% load", 91, 100.0 * curve.at(1.00), "%");
  const auto cert = certification(curve);
  std::printf("  certification check: %s (paper: Platinum)\n",
              cert ? std::string(to_string(*cert)).c_str() : "none");

  CsvTable csv({"load_pct", "efficiency_pct"});
  for (std::size_t i = 0; i < curve_series.x.size(); ++i) {
    csv.add_row({format_number(curve_series.x[i], 0),
                 format_number(curve_series.y[i], 2)});
  }
  bench::dump_csv(csv, "fig5_pfe600_curve.csv");
  return 0;
}
