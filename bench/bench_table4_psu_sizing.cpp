// Table 4 — savings from right-sizing PSU capacities (§9.3.3): pick the
// smallest catalogue capacity C >= k * l_max, then force every PSU to at
// least each minimum-capacity option. Small minima save power (better load
// points); large minima cost power (deeper into the inefficient low-load
// region). k=2 preserves single-PSU-failure resilience.
#include <cstdio>

#include "bench_common.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "network/trace_engine.hpp"
#include "psu/optimization.hpp"
#include "util/ascii_chart.hpp"

using namespace joules;

int main() {
  bench::banner("Table 4",
                "It is best to size PSU capacity close to the required power; "
                "the cost of over-dimensioning is smaller than the cost of "
                "poor efficiency.");

  const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime t = sim.topology().options.study_begin + 30 * kSecondsPerDay;
  TraceEngine engine(sim);
  const auto fleet = group_by_router(engine.psu_snapshot(t));

  // Paper's Table 4 (percent saved), k rows x capacity columns.
  const std::map<double, std::vector<double>> paper = {
      {1.0, {2, 2, 1, 0, -1, -1}},
      {2.0, {2, 2, 1, 0, -1, -1}},
  };

  std::vector<std::string> header = {"k \\ min capacity"};
  for (const double cap : kCapacityOptionsW) {
    header.push_back(format_number(cap, 0) + " W");
  }

  CsvTable csv({"k", "min_capacity_w", "saved_w", "saved_pct", "paper_pct"});
  std::vector<std::vector<std::string>> rows;
  for (const double k : {1.0, 2.0}) {
    std::vector<std::string> measured_row = {"k=" + format_number(k, 0) +
                                             " (measured)"};
    std::vector<std::string> paper_row = {"k=" + format_number(k, 0) +
                                          " (paper)"};
    for (std::size_t c = 0; c < kCapacityOptionsW.size(); ++c) {
      const SavingsResult result =
          right_size_capacity(fleet, k, kCapacityOptionsW[c]);
      measured_row.push_back(format_number(100.0 * result.saved_frac(), 1) +
                             "% (" + format_number(result.saved_w(), 0) + " W)");
      paper_row.push_back(format_number(paper.at(k)[c], 0) + "%");
      csv.add_row({format_number(k, 0), format_number(kCapacityOptionsW[c], 0),
                   format_number(result.saved_w(), 0),
                   format_number(100.0 * result.saved_frac(), 2),
                   format_number(paper.at(k)[c], 0)});
    }
    rows.push_back(std::move(measured_row));
    rows.push_back(std::move(paper_row));
  }
  std::printf("%s\n", render_text_table(header, rows).c_str());

  std::puts("  shape check: savings are positive at small minimum capacities,");
  std::puts("  cross zero around ~1 kW, and turn negative beyond - the same");
  std::puts("  crossover as the paper. Magnitudes are larger here because the");
  std::puts("  simulated fleet has smaller baseline capacities and a wider PSU");
  std::puts("  quality spread than Switch's (documented in EXPERIMENTS.md).");
  bench::dump_csv(csv, "table4_psu_sizing.csv");
  return 0;
}
