// Ablation — does the §9.3.4 snapshot estimator predict what hot-standby
// actually saves?
//
// The paper estimates single-PSU savings from one (P_in, P_out) snapshot and
// a PFE600-shaped curve assumption. Our simulator can *do* the experiment:
// flip every router to hot-standby mode and measure the true wall-power
// delta. The gap between estimator and truth quantifies the §9.4 caveat
// ("we could only coarsely estimate the shape of the efficiency curves").
#include <cstdio>

#include "bench_common.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "network/trace_engine.hpp"
#include "psu/optimization.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  bench::banner("Ablation: PSU consolidation estimator vs simulated truth",
                "§9.3.4's snapshot-based estimate compared against actually "
                "switching the fleet to hot-standby.");

  NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime t = sim.topology().options.study_begin + 30 * kSecondsPerDay;

  // --- Estimator (what the paper could do) -------------------------------
  TraceEngine engine(sim);
  const auto fleet = group_by_router(engine.psu_snapshot(t));
  const SavingsResult estimated = consolidate_to_single_psu(fleet);

  // --- Ground truth (what only a simulator / a brave operator can do) -----
  double before = 0.0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    before += sim.wall_power_w(r, t);
  }
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    sim.device(r).set_psu_mode(PsuMode::kHotStandby);
  }
  double after = 0.0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    after += sim.wall_power_w(r, t);
  }
  const double true_saving = before - after;

  std::printf("  network wall power, active-active: %.1f kW\n", w_to_kw(before));
  std::printf("  network wall power, hot-standby:   %.1f kW\n", w_to_kw(after));
  std::printf("\n");
  bench::compare_line("estimator (snapshot + curve assumption)",
                      estimated.saved_w(), estimated.saved_w(), "W");
  std::printf("  %-38s truth    %10.0f W  (%.1f%%)\n", "simulated ground truth",
              true_saving, 100.0 * true_saving / before);
  std::printf("  %-38s %10.1f %%\n", "estimator / truth ratio",
              100.0 * estimated.saved_w() / true_saving);

  std::puts("\n  sources of the gap the §9.4 discussion anticipates:");
  std::puts("   - the estimator assumes zero standby losses; the simulator");
  std::puts("     charges a per-PSU housekeeping draw;");
  std::puts("   - the snapshot's sensor noise (and its capped >100% readings)");
  std::puts("     perturbs each PSU's calibrated curve offset;");
  std::puts("   - the estimator freezes the load at the snapshot instant.");

  CsvTable csv({"quantity", "watts"});
  csv.add_row({"baseline_input_w", format_number(before, 1)});
  csv.add_row({"hot_standby_input_w", format_number(after, 1)});
  csv.add_row({"estimated_saving_w", format_number(estimated.saved_w(), 1)});
  csv.add_row({"true_saving_w", format_number(true_saving, 1)});
  bench::dump_csv(csv, "ablation_psu_mode.csv");
  return 0;
}
