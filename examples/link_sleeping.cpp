// Link sleeping on a deployed network: Hypnos + the §8 savings bracket.
//
//   $ ./link_sleeping [max_utilization]
//
// Runs the Hypnos greedy pass over a month of simulated traffic, reports
// which links can sleep, and converts that into the watts range the §8
// analysis derives (Table 5 port powers + datasheet transceiver values,
// with P_trx,up ∈ [0, P_trx]).
#include <cstdio>
#include <cstdlib>

#include "sleep/hypnos.hpp"
#include "sleep/savings.hpp"
#include "util/units.hpp"

using namespace joules;

int main(int argc, char** argv) {
  HypnosOptions options;
  if (argc > 1) options.max_utilization = std::atof(argv[1]);
  std::printf("=== Hypnos link sleeping (max post-reroute utilization %.0f%%) ===\n\n",
              100.0 * options.max_utilization);

  const NetworkSimulation sim(build_switch_like_network(), /*seed=*/7);
  const SimTime begin = sim.topology().options.study_begin;
  const SimTime end = begin + 30 * kSecondsPerDay;  // one month, like §8

  const std::vector<double> loads =
      average_link_loads_bps(sim, begin, end, 3 * kSecondsPerHour);
  std::printf("internal links: %zu, average utilizations computed over %s..%s\n",
              loads.size(), format_date(begin).c_str(), format_date(end).c_str());

  const HypnosResult result = run_hypnos(sim.topology(), loads, options);
  std::printf("links put to sleep: %zu / %zu (%.0f%%)\n",
              result.sleeping_links.size(), result.candidate_links,
              100.0 * result.fraction_off());

  double network_power = 0.0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    network_power += sim.wall_power_w(r, begin + 15 * kSecondsPerDay);
  }
  const SleepSavings savings =
      estimate_sleep_savings(sim.topology(), result, network_power);

  std::printf("\ninterfaces turned down: %zu\n", savings.interfaces_off);
  std::printf("network power reference: %.1f kW\n", w_to_kw(network_power));
  std::printf("estimated savings: %.0f - %.0f W  (%.1f%% - %.1f%%)\n",
              savings.min_w, savings.max_w, 100.0 * savings.min_frac(),
              100.0 * savings.max_frac());
  std::puts("\nthe bracket exists because routers do not power off plugged");
  std::puts("transceivers: only P_port is guaranteed; P_trx,up is somewhere");
  std::puts("between zero and the module's full datasheet power.");

  // The structural limit: external links cannot sleep.
  const std::size_t external = sim.topology().external_interface_count();
  const std::size_t total = sim.topology().interface_count();
  std::printf("\nexternal interfaces (not candidates): %zu of %zu (%.0f%%)\n",
              external, total, 100.0 * static_cast<double>(external) / static_cast<double>(total));

  // --- Time-varying schedule over one day ---------------------------------
  std::puts("\n--- diurnal schedule (4-hour windows over one weekday) ---");
  const SimTime day = make_time(2024, 9, 3);
  const SleepSchedule schedule = run_hypnos_schedule(
      sim, day, day + kSecondsPerDay, 4 * kSecondsPerHour, kSecondsPerHour,
      options);
  for (const SleepWindow& window : schedule.windows) {
    std::printf("  %s - %s: %zu/%zu links asleep\n",
                format_date_time(window.begin).c_str(),
                format_date_time(window.end).c_str(),
                window.result.sleeping_links.size(), schedule.candidate_links);
  }
  const SleepEnergySavings energy = estimate_schedule_energy(sim, schedule);
  std::printf("\nlink-time asleep: %.0f%% (night windows beat the day peak)\n",
              100.0 * schedule.fraction_link_time_off());
  std::printf("energy saved over the day: %.1f - %.1f kWh of %.0f kWh "
              "(%.2f%% - %.2f%%)\n",
              energy.min_kwh, energy.max_kwh, energy.network_kwh,
              100.0 * energy.min_frac(), 100.0 * energy.max_frac());
  return 0;
}
