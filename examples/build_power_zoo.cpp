// Build a Network Power Zoo from every data source the paper collects —
// datasheets, lab-derived models, deployment measurements, PSU snapshots —
// then query one device's dossier across all of them.
//
//   $ ./build_power_zoo [output-dir]
#include <cstdio>
#include <string>

#include "datasheet/corpus.hpp"
#include "device/catalog.hpp"
#include "netpowerbench/derivation.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "stats/descriptive.hpp"
#include "zoo/power_zoo.hpp"

using namespace joules;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "power_zoo";
  std::puts("=== Building a Network Power Zoo ===\n");
  PowerZoo zoo;

  // --- 1. Datasheets: the full 777-model corpus. -------------------------
  for (DatasheetRecord& record : generate_corpus()) {
    zoo.add_datasheet(std::move(record));
  }
  std::printf("datasheets contributed: %zu\n", zoo.stats().datasheets);

  // --- 2. Lab: derive and contribute power models for two devices. --------
  for (const char* model : {"NCS-55A1-24H", "8201-32FH"}) {
    const RouterSpec spec = find_router_spec(model).value();
    SimulatedRouter dut(spec, 1234);
    OrchestratorOptions lab;
    lab.start_time = make_time(2025, 2, 1);
    lab.measure_s = 600;
    Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 1235), lab);
    std::vector<ProfileKey> keys;
    for (const InterfaceProfile& profile : spec.truth.profiles()) {
      if (profile.key.transceiver == TransceiverKind::kPassiveDAC) {
        keys.push_back(profile.key);
      }
    }
    const DerivedModel derived = derive_power_model(orchestrator, keys);
    zoo.add_power_model(model, derived.model, "netpowerbench-lab");

    MeasurementSummary lab_summary;
    lab_summary.device_model = model;
    lab_summary.source = MeasurementSource::kLab;
    lab_summary.window_begin = lab.start_time;
    lab_summary.window_end = orchestrator.lab_time();
    lab_summary.median_power_w = derived.base_measurement.mean_power_w;
    lab_summary.mean_power_w = derived.base_measurement.mean_power_w;
    lab_summary.sample_count = derived.base_measurement.sample_count;
    zoo.add_measurement(lab_summary);
  }
  std::printf("power models contributed: %zu\n", zoo.stats().power_models);

  // --- 3. Deployment: SNMP medians + the PSU snapshot. --------------------
  const NetworkSimulation sim(build_switch_like_network(), 7);
  const SimTime begin = sim.topology().options.study_begin;
  const SimTime end = begin + 14 * kSecondsPerDay;
  std::size_t contributed = 0;
  for (std::size_t r = 0; r < sim.router_count() && contributed < 20; ++r) {
    const auto median_power =
        snmp_median_power_w(sim, r, begin, end, 6 * kSecondsPerHour);
    if (!median_power) continue;
    MeasurementSummary summary;
    summary.device_model = sim.topology().routers[r].model;
    summary.router_name = sim.topology().routers[r].name;
    summary.source = MeasurementSource::kSnmp;
    summary.window_begin = begin;
    summary.window_end = end;
    summary.median_power_w = *median_power;
    summary.mean_power_w = *median_power;
    summary.sample_count = static_cast<std::size_t>((end - begin) /
                                                    (6 * kSecondsPerHour));
    zoo.add_measurement(summary);
    ++contributed;
  }
  for (PsuObservation& obs : psu_snapshot(sim, begin + 7 * kSecondsPerDay)) {
    zoo.add_psu_observation(std::move(obs));
  }
  std::printf("measurement summaries: %zu, PSU observations: %zu\n\n",
              zoo.stats().measurements, zoo.stats().psu_observations);

  // --- 4. Query a dossier. -----------------------------------------------
  const PowerZoo::DeviceDossier dossier = zoo.dossier("NCS-55A1-24H");
  std::puts("dossier: NCS-55A1-24H");
  if (dossier.datasheet && dossier.datasheet->typical_power_w) {
    std::printf("  datasheet typical: %.0f W\n",
                *dossier.datasheet->typical_power_w);
  }
  if (dossier.model) {
    std::printf("  derived model P_base: %.1f W (%zu profiles)\n",
                dossier.model->base_power_w(), dossier.model->profile_count());
  }
  for (const MeasurementSummary& m : dossier.measurements) {
    std::printf("  %s median: %.1f W (%s, %zu samples)\n",
                std::string(to_string(m.source)).c_str(), m.median_power_w,
                m.router_name.empty() ? "lab bench" : m.router_name.c_str(),
                m.sample_count);
  }
  std::printf("  PSU observations on file: %zu\n", dossier.psu_observations);

  // --- 5. Persist and verify the round trip. ------------------------------
  zoo.save(out_dir);
  const PowerZoo reloaded = PowerZoo::load(out_dir);
  std::printf("\nsaved to %s/ and reloaded: %zu datasheets, %zu models, "
              "%zu measurements, %zu PSU observations\n",
              out_dir.c_str(), reloaded.stats().datasheets,
              reloaded.stats().power_models, reloaded.stats().measurements,
              reloaded.stats().psu_observations);
  return 0;
}
