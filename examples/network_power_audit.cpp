// Audit the power demand of a (simulated) ISP network.
//
//   $ ./network_power_audit
//
// Builds the Switch-like 107-router deployment, then answers the operator
// questions the paper's dataset supports: how much power does the network
// draw, how does it split across router models, what share is transceivers,
// and what do the PSUs report vs what the wall sees.
#include <cstdio>
#include <map>

#include "network/dataset.hpp"
#include "stats/descriptive.hpp"
#include "network/inventory.hpp"
#include "network/simulation.hpp"
#include "util/ascii_chart.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  std::puts("=== Network power audit (Switch-like deployment) ===\n");
  const NetworkSimulation sim(build_switch_like_network(), /*seed=*/7);
  const SimTime begin = sim.topology().options.study_begin;
  const SimTime snapshot_time = begin + 10 * kSecondsPerDay;

  // --- Fleet composition -----------------------------------------------
  std::map<std::string, int> model_counts;
  std::map<std::string, double> model_power;
  double total_power = 0.0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    if (!sim.active(r, snapshot_time)) continue;
    const std::string& model = sim.topology().routers[r].model;
    const double power = sim.wall_power_w(r, snapshot_time);
    model_counts[model] += 1;
    model_power[model] += power;
    total_power += power;
  }

  std::printf("routers: %zu deployed, %zu PoPs, %zu interfaces (%zu external)\n",
              sim.router_count(), sim.topology().pops.size(),
              sim.topology().interface_count(),
              sim.topology().external_interface_count());
  std::printf("total wall power at %s: %.1f kW\n\n",
              format_date(snapshot_time).c_str(), w_to_kw(total_power));

  std::vector<std::vector<std::string>> rows;
  for (const auto& [model, count] : model_counts) {
    rows.push_back({model, std::to_string(count),
                    format_number(model_power[model] / count, 1),
                    format_number(model_power[model], 0),
                    format_number(100.0 * model_power[model] / total_power, 1)});
  }
  std::printf("%s\n",
              render_text_table({"Model", "Count", "Avg W", "Total W", "% of net"},
                                rows)
                  .c_str());

  // --- Transceiver accounting (§7) ----------------------------------------
  const TransceiverPowerReport trx = transceiver_power_report(sim, snapshot_time);
  std::printf("transceivers: %zu modules drawing %.1f kW = %.1f%% of network power\n",
              trx.modules, w_to_kw(trx.total_w), 100.0 * trx.share_of_network());
  std::printf("external share: %zu modules, %.1f%% of transceiver power\n\n",
              trx.external_modules, 100.0 * trx.external_share_of_transceivers());

  // --- Telemetry coverage (§6) ------------------------------------------
  int reporting = 0;
  int silent = 0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    if (!sim.active(r, snapshot_time)) continue;
    (sim.reported_power_w(r, snapshot_time).has_value() ? reporting : silent) += 1;
  }
  std::printf("PSU power telemetry: %d routers report, %d do not\n\n", reporting,
              silent);

  // --- A week of network power & traffic -----------------------------------
  const NetworkTraces traces =
      network_traces(sim, begin, begin + 7 * kSecondsPerDay, kSecondsPerHour);
  ChartOptions options;
  options.title = "Network power over one week";
  options.y_label = "Power (W)";
  options.height = 12;
  std::printf("%s\n", render_time_series_chart(
                          {{"total power", traces.total_power_w}}, options)
                          .c_str());
  options.title = "Network traffic over one week";
  options.y_label = "Traffic (bps)";
  std::printf("%s\n", render_time_series_chart(
                          {{"total traffic", traces.total_traffic_bps}}, options)
                          .c_str());

  const double peak_utilization =
      max_value(traces.total_traffic_bps.values()) / traces.capacity_bps;
  std::printf("peak utilization: %.2f%% of %.1f Tbps capacity\n",
              100.0 * peak_utilization, bps_to_tbps(traces.capacity_bps));

  // --- Inventory export -----------------------------------------------
  router_inventory(sim.topology()).write_file("router_inventory.csv");
  module_inventory(sim.topology()).write_file("module_inventory.csv");
  std::puts("\nwrote router_inventory.csv and module_inventory.csv");
  return 0;
}
