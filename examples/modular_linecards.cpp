// Modular routers and linecard power — the §4.3 extension in action.
//
//   $ ./modular_linecards
//
// Seats linecards in a simulated 8-slot chassis, derives P_linecard with the
// seat/unseat regression (the "measured similarly as P_trx" idea), and then
// reproduces the Juniper blog experiment the paper cites: software-powering
// off unused PFEs/linecards cuts a large share of an idle chassis' power.
#include <cstdio>

#include "device/modular_router.hpp"
#include "netpowerbench/modular.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  std::puts("=== Modular chassis: deriving and exploiting P_linecard ===\n");

  SimulatedModularRouter dut(reference_modular_chassis(), /*seed=*/99);
  dut.set_ambient_override_c(22.0);

  // --- 1. Derive P_linecard for each card type --------------------------
  LinecardDerivationOptions lab;
  lab.start_time = make_time(2025, 4, 1);
  lab.measure_s = 600;
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, card] : dut.spec().card_catalog) {
    const LinecardDerivation derivation = derive_linecard_power(
        dut, PowerMeter(PowerMeterSpec{}, 5), name, 6, lab);
    rows.push_back({name, format_number(derivation.linecard_power_w, 1) + " W",
                    format_number(card.power_w, 1) + " W",
                    format_number(derivation.fit.r_squared, 4)});
  }
  std::puts("P_linecard derived by seat/unseat regression:");
  std::printf("%s\n", render_text_table({"Card", "Derived (wall)",
                                         "Truth (DC)", "fit R2"},
                                        rows)
                          .c_str());

  // --- 2. A production-like configuration -------------------------------
  const SimTime t = make_time(2025, 4, 20, 12, 0, 0);
  const int ten_gig_a = dut.seat_linecard("LC-24X10GE");
  const int ten_gig_b = dut.seat_linecard("LC-24X10GE");
  const int hundred_gig = dut.seat_linecard("LC-8X100GE");
  const int spare_card = dut.seat_linecard("LC-36X10GE");  // installed, unused

  const ProfileKey lr{PortType::kSFPPlus, TransceiverKind::kLR, LineRate::kG10};
  const ProfileKey lr4{PortType::kQSFP28, TransceiverKind::kLR4, LineRate::kG100};
  for (int i = 0; i < 12; ++i) dut.add_interface(ten_gig_a, lr, InterfaceState::kUp);
  for (int i = 0; i < 8; ++i) dut.add_interface(ten_gig_b, lr, InterfaceState::kUp);
  for (int i = 0; i < 4; ++i) dut.add_interface(hundred_gig, lr4, InterfaceState::kUp);

  const double all_on = dut.wall_power_w(t);
  std::printf("4 cards seated (one unused), 24 interfaces up: %.1f W wall\n",
              all_on);

  // --- 3. The Juniper experiment: power off what is not forwarding -------
  dut.set_linecard_powered(spare_card, false);
  const double spare_off = dut.wall_power_w(t);
  std::printf("power off the unused 36x10GE card:          %.1f W  (saves %.1f W, %.1f%%)\n",
              spare_off, all_on - spare_off,
              100.0 * (all_on - spare_off) / all_on);

  dut.set_linecard_powered(ten_gig_b, false);
  const double two_off = dut.wall_power_w(t);
  std::printf("also power off the half-used 24x10GE card:  %.1f W  (total saved %.1f W, %.1f%%)\n",
              two_off, all_on - two_off, 100.0 * (all_on - two_off) / all_on);

  std::puts("\nthe paper cites Juniper reporting up to 47% base-power reduction");
  std::puts("from powering off unused PFEs - the same lever, modeled here as");
  std::puts("a per-card P_linecard term measured like P_trx.");
  return 0;
}
