// Autopower end to end: deploy a measurement unit against a production
// router and collect external power measurements over real TCP (§6.1).
//
//   $ ./autopower_demo
//
// The collection server runs in-process on a loopback port; the unit is a
// two-channel meter wired to the two PSU feeds of a simulated 8201-32FH.
// The demo exercises the full §6.1 requirement list: remote start via a
// server-queued command, periodic sampling, buffering through a simulated
// uplink outage, and idempotent re-upload after reconnecting.
#include <cstdio>

#include "autopower/client.hpp"
#include "autopower/server.hpp"
#include "device/catalog.hpp"
#include "stats/descriptive.hpp"
#include "util/units.hpp"

using namespace joules;
using autopower::Client;
using autopower::Command;
using autopower::Server;

int main() {
  std::puts("=== Autopower demo: external power measurement over TCP ===\n");

  // The production router we are metering: each PSU feeds one meter channel.
  RouterSpec spec = find_router_spec("8201-32FH").value();
  SimulatedRouter router(spec, /*seed=*/2024);
  const ProfileKey dac{PortType::kQSFPDD, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  for (int i = 0; i < 12; ++i) router.add_interface(dac, InterfaceState::kUp);

  auto psu_feed_w = [&router](int channel, SimTime t) {
    // Split the wall power across the two PSU feeds (active-active).
    (void)channel;
    return router.wall_power_w(t) / 2.0;
  };

  Server server;  // ephemeral loopback port
  std::printf("collection server listening on 127.0.0.1:%u\n", server.port());

  Client::Options options;
  options.unit_id = "pop03-unit-1";
  options.server_port = server.port();
  options.upload_batch = 512;
  Client unit(options, PowerMeter(PowerMeterSpec{}, 17), psu_feed_w);

  // Operator queues a remote start (both channels, 1 s period) before the
  // unit ever connects — it picks the commands up on its first poll.
  server.enqueue_command(options.unit_id,
                         {Command::Kind::kStartMeasurement, 0, 1});
  server.enqueue_command(options.unit_id,
                         {Command::Kind::kStartMeasurement, 1, 1});
  if (!unit.sync()) {
    std::fputs("initial sync failed\n", stderr);
    return 1;
  }
  std::printf("unit registered; measuring channel 0: %s, channel 1: %s\n\n",
              unit.is_measuring(0) ? "yes" : "no",
              unit.is_measuring(1) ? "yes" : "no");

  // One simulated hour of sampling with an upload every 5 minutes, and a
  // 20-minute uplink outage in the middle.
  const SimTime start = make_time(2024, 10, 1, 12, 0, 0);
  std::size_t failed_syncs = 0;
  for (SimTime t = start; t < start + kSecondsPerHour; ++t) {
    unit.tick(t);
    const SimTime elapsed = t - start;
    const bool outage = elapsed >= 20 * kSecondsPerMinute &&
                        elapsed < 40 * kSecondsPerMinute;
    if (elapsed % (5 * kSecondsPerMinute) == 0 && elapsed > 0) {
      if (outage) {
        unit.drop_connection();
        ++failed_syncs;
        std::printf("  t+%2lld min: uplink down, buffering (%zu samples queued)\n",
                    static_cast<long long>(elapsed / 60), unit.buffered_samples());
      } else if (unit.sync()) {
        std::printf("  t+%2lld min: synced, buffer empty\n",
                    static_cast<long long>(elapsed / 60));
      }
    }
  }
  unit.sync();  // final flush

  const TimeSeries ch0 = server.measurements(options.unit_id, 0);
  const TimeSeries ch1 = server.measurements(options.unit_id, 1);
  std::printf("\nserver holds %zu + %zu samples across %zu accepted batches\n",
              ch0.size(), ch1.size(), server.accepted_batches(options.unit_id));
  std::printf("simulated outages survived: %zu\n", failed_syncs);

  const Summary summary = summarize(ch0.values());
  std::printf("\nchannel 0 (PSU feed A): mean %.1f W, sd %.2f W, "
              "min %.1f, max %.1f\n",
              summary.mean, summary.stddev, summary.min, summary.max);
  std::printf("true wall power / 2 at start: %.1f W\n",
              psu_feed_w(0, start));
  std::puts("\nno gaps: every sampled second reached the server exactly once.");
  return 0;
}
