// PSU efficiency what-if analysis over a deployed fleet (§9).
//
//   $ ./psu_optimizer
//
// Takes the one-time PSU sensor snapshot of the simulated Switch network and
// estimates the wall-power savings of (a) upgrading every PSU to each
// 80 Plus standard, (b) right-sizing PSU capacities, (c) feeding each router
// from a single PSU, and (d) combining upgrade + consolidation.
#include <cstdio>

#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "psu/optimization.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  std::puts("=== PSU optimization what-if (simulated Switch fleet) ===\n");
  const NetworkSimulation sim(build_switch_like_network(), /*seed=*/7);
  const SimTime t = sim.topology().options.study_begin + 30 * kSecondsPerDay;

  const std::vector<PsuObservation> snapshot = psu_snapshot(sim, t);
  const std::vector<RouterPsuGroup> fleet = group_by_router(snapshot);
  std::printf("snapshot: %zu PSUs on %zu routers\n", snapshot.size(), fleet.size());

  // Where does the fleet sit on the efficiency curve today?
  double load_sum = 0.0;
  double eff_sum = 0.0;
  double capped = 0.0;
  for (const PsuObservation& obs : snapshot) {
    load_sum += obs.load_frac();
    eff_sum += obs.efficiency();
    if (obs.output_power_w >= obs.input_power_w && obs.input_power_w > 0) capped += 1;
  }
  std::printf("average load %.1f%%, average (capped) efficiency %.1f%%\n",
              100.0 * load_sum / snapshot.size(), 100.0 * eff_sum / snapshot.size());
  std::printf("physically-impossible sensor readings capped at 100%%: %.0f\n\n",
              capped);

  // --- (a) Upgrade to 80 Plus standards ---------------------------------
  std::vector<std::vector<std::string>> rows;
  for (const EightyPlusLevel level : kAllEightyPlusLevels) {
    const SavingsResult upgrade = upgrade_to_standard(fleet, level);
    const SavingsResult both = consolidate_and_upgrade(fleet, level);
    rows.push_back({std::string(to_string(level)),
                    format_number(upgrade.saved_w(), 0) + " W",
                    format_number(100.0 * upgrade.saved_frac(), 1) + " %",
                    format_number(both.saved_w(), 0) + " W",
                    format_number(100.0 * both.saved_frac(), 1) + " %"});
  }
  std::puts("(a)+(d) upgrade PSUs / upgrade AND single-PSU:");
  std::printf("%s\n", render_text_table({"Standard", "Upgrade W", "Upgrade %",
                                         "Both W", "Both %"},
                                        rows)
                          .c_str());

  // --- (c) Single PSU --------------------------------------------------
  const SavingsResult single = consolidate_to_single_psu(fleet);
  std::printf("(c) single-PSU operation: %.0f W (%.1f%%)\n\n", single.saved_w(),
              100.0 * single.saved_frac());

  // --- (b) Right-sizing -------------------------------------------------
  std::puts("(b) right-size capacities (k * l_max rule):");
  std::vector<std::vector<std::string>> sizing_rows;
  for (const double k : {1.0, 2.0}) {
    std::vector<std::string> row = {"k = " + format_number(k, 0)};
    for (const double min_cap : kCapacityOptionsW) {
      const SavingsResult result = right_size_capacity(fleet, k, min_cap);
      row.push_back(format_number(100.0 * result.saved_frac(), 1) + "% (" +
                    format_number(result.saved_w(), 0) + " W)");
    }
    sizing_rows.push_back(std::move(row));
  }
  std::vector<std::string> header = {"k \\ min capacity"};
  for (const double cap : kCapacityOptionsW) {
    header.push_back(format_number(cap, 0) + " W");
  }
  std::printf("%s\n", render_text_table(header, sizing_rows).c_str());

  std::puts("reading: upgrades help most; over-dimensioning costs less than\n"
            "poor efficiency; one PSU at double load beats two at low load.");
  return 0;
}
