// Quickstart: build a router power model from published parameters and
// predict the power draw of a configuration under load.
//
//   $ ./quickstart
//
// Uses the NCS-55A1-24H parameters of the paper's Table 2(a) and walks
// through the §4 model: static terms per interface state, dynamic terms per
// offered load, and the per-term breakdown the analyses rely on.
#include <cstdio>
#include <vector>

#include "model/model_io.hpp"
#include "model/power_model.hpp"
#include "util/units.hpp"

using namespace joules;

int main() {
  // --- 1. Describe the router: P_base + one profile per interface type. ---
  PowerModel model(320.0);  // P_base [W]

  InterfaceProfile dac100;
  dac100.key = {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100};
  dac100.port_power_w = 0.32;
  dac100.trx_in_power_w = 0.02;
  dac100.trx_up_power_w = 0.19;
  dac100.energy_per_bit_j = picojoules_to_joules(22);
  dac100.energy_per_packet_j = nanojoules_to_joules(58);
  dac100.offset_power_w = 0.37;
  model.add_profile(dac100);

  // --- 2. Describe a deployment configuration. -----------------------------
  // 16 interfaces up and carrying traffic, 4 enabled but link-down, 4 ports
  // holding spare transceivers.
  std::vector<InterfaceConfig> configs;
  std::vector<InterfaceLoad> loads;
  for (int i = 0; i < 24; ++i) {
    InterfaceConfig config;
    config.name = "HundredGigE0/0/0/" + std::to_string(i);
    config.profile = dac100.key;
    config.state = i < 16   ? InterfaceState::kUp
                   : i < 20 ? InterfaceState::kEnabled
                            : InterfaceState::kPlugged;
    configs.push_back(config);
    // 12 Gbps + 1.8 Mpps on the active interfaces (both directions summed).
    loads.push_back(i < 16 ? InterfaceLoad{gbps_to_bps(12), 1.8e6}
                           : InterfaceLoad{});
  }

  // --- 3. Predict. -----------------------------------------------------
  const PowerModel::Prediction prediction = model.predict(configs, loads);
  const PowerBreakdown& b = prediction.breakdown;

  std::puts("Power prediction for an NCS-55A1-24H (Table 2a parameters)\n");
  std::printf("  P_base                 %8.2f W\n", b.base_w);
  std::printf("  P_port   (20 enabled)  %8.2f W\n", b.port_w);
  std::printf("  P_trx,in (24 plugged)  %8.2f W\n", b.trx_in_w);
  std::printf("  P_trx,up (16 up)       %8.2f W\n", b.trx_up_w);
  std::printf("  E_bit    (192 Gbps)    %8.2f W\n", b.bit_w);
  std::printf("  E_pkt    (28.8 Mpps)   %8.2f W\n", b.pkt_w);
  std::printf("  P_offset               %8.2f W\n", b.offset_w);
  std::printf("  -------------------------------\n");
  std::printf("  total                  %8.2f W  (static %.2f + dynamic %.2f)\n\n",
              b.total_w(), b.static_w(), b.dynamic_w());

  // --- 4. What would link sleeping save on one of these ports? -----------
  const double saving = model.port_down_saving_w(dac100.key, loads[0]);
  std::printf("Turning one loaded port down saves %.2f W", saving);
  std::printf(" (P_port + P_trx,up + its dynamic power;\n");
  std::printf("the %.2f W P_trx,in keeps burning while the module stays plugged"
              " - \"down\" does not mean \"off\").\n\n",
              dac100.trx_in_power_w);

  // --- 5. Models serialize to CSV for reuse. ------------------------------
  std::puts("Serialized model (CSV):");
  std::printf("%s\n", model_to_string(model).c_str());
  std::puts("Rendered like the paper's Table 2:");
  std::printf("%s", render_model_table("NCS-55A1-24H", model).c_str());
  return 0;
}
