// Derive a router power model in the (simulated) lab — the NetPowerBench
// workflow of §5.
//
//   $ ./derive_power_model [model-name]
//
// Sets up the bench (DUT + MCP39F511N-class meter + traffic generator), runs
// the Base/Idle/Port/Trx/Snake battery, and prints the derived parameters
// next to the device's hidden ground truth. The derived values describe WALL
// power, so they come out slightly above the DC-side truth — the same
// conversion-loss absorption the paper's models exhibit.
#include <cstdio>
#include <string>

#include "device/catalog.hpp"
#include "model/model_io.hpp"
#include "netpowerbench/derivation.hpp"
#include "util/units.hpp"

using namespace joules;

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "NCS-55A1-24H";
  const auto spec = find_router_spec(model_name);
  if (!spec) {
    std::fprintf(stderr, "unknown router model '%s'\n", model_name.c_str());
    std::fputs("known models:\n", stderr);
    for (const RouterSpec& known : all_router_specs()) {
      std::fprintf(stderr, "  %s\n", known.model.c_str());
    }
    return 1;
  }

  std::printf("=== NetPowerBench: deriving a power model for %s ===\n\n",
              model_name.c_str());

  SimulatedRouter dut(*spec, /*seed=*/4242);
  OrchestratorOptions lab;
  lab.start_time = make_time(2025, 2, 1);
  lab.measure_s = 900;
  lab.repeats = 3;
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 99), lab);

  // Derive every profile the device's truth covers for its first port type.
  std::vector<ProfileKey> keys;
  for (const InterfaceProfile& profile : spec->truth.profiles()) {
    if (profile.key.port == spec->ports.front().type) keys.push_back(profile.key);
  }
  std::printf("profiles to derive: %zu (port type %s)\n", keys.size(),
              std::string(to_string(spec->ports.front().type)).c_str());

  const DerivedModel derived = derive_power_model(orchestrator, keys);

  std::printf("\nBase experiment: %.1f W mean (sd %.2f, %zu samples)\n",
              derived.base_measurement.mean_power_w,
              derived.base_measurement.stddev_w,
              derived.base_measurement.sample_count);
  std::printf("lab time consumed: %.1f hours\n\n",
              static_cast<double>(orchestrator.lab_time() - lab.start_time) /
                  kSecondsPerHour);

  std::puts("Derived model (wall power):");
  std::printf("%s\n", render_model_table(model_name, derived.model).c_str());

  std::puts("Hidden ground truth (DC side, catalog):");
  std::printf("%s\n", render_model_table(model_name, spec->truth).c_str());

  std::puts("Regression quality:");
  for (const ProfileDerivation& derivation : derived.derivations) {
    std::printf("  %-28s  Port fit R2=%.4f  Trx fit R2=%.4f  energy fit R2=%.4f\n",
                to_string(derivation.profile.key).c_str(),
                derivation.port_fit.r_squared, derivation.trx_fit.r_squared,
                derivation.energy_fit.r_squared);
  }
  return 0;
}
