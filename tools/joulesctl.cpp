// joulesctl — command-line front end to the library.
//
//   joulesctl derive <router-model> [out.csv]     derive a power model (sim lab)
//   joulesctl campaign <router-model> <checkpoint.csv> [disturb-prob] [out.csv]
//                                                 fault-tolerant derivation with
//                                                 crash-safe resume
//   joulesctl models                              list known router models
//   joulesctl predict <model.csv> <util%> [ifaces] predict power at a utilization
//   joulesctl datasheet <file>                    parse a datasheet text file
//   joulesctl audit [seed]                        network-wide power audit
//   joulesctl zoo-stats <dir>                     summarize a Power Zoo directory
//   joulesctl zoo-dossier <dir> <model>           one device across all sources
//   joulesctl obs <manifest.json>                 pretty-print a run manifest
//   joulesctl obs <a.json> <b.json>               diff two run manifests
//   joulesctl lint [repo-root]                    determinism lint with fix hints
//   joulesctl whatif <script> [seed] [workers]    scripted what-if query batch
//
// Exit codes: 0 ok, 1 usage error, 2 runtime failure, 3 campaign completed
// but produced low-confidence (partial) model terms.
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "datasheet/parser.hpp"
#include "device/catalog.hpp"
#include "joules_lint/lint.hpp"
#include "model/model_io.hpp"
#include "netpowerbench/campaign.hpp"
#include "netpowerbench/derivation.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"
#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "network/whatif_engine.hpp"
#include "util/atomic_file.hpp"
#include "util/units.hpp"
#include "zoo/power_zoo.hpp"

using namespace joules;

namespace {

// Locale-independent double parse for CLI arguments (atof follows the host
// locale's decimal separator; from_chars never does). Returns `fallback` on
// anything that is not a full numeric token.
double parse_double_arg(const char* text, double fallback) {
  double value = 0.0;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, value);
  return (ec == std::errc{} && ptr == end && end != text) ? value : fallback;
}

int usage() {
  std::fputs(
      "usage:\n"
      "  joulesctl derive <router-model> [out.csv]\n"
      "  joulesctl campaign <router-model> <checkpoint.csv> [disturb-prob] "
      "[out.csv]\n"
      "  joulesctl models\n"
      "  joulesctl predict <model.csv> <utilization%%> [interfaces]\n"
      "  joulesctl datasheet <file>\n"
      "  joulesctl audit [seed]\n"
      "  joulesctl zoo-stats <dir>\n"
      "  joulesctl zoo-dossier <dir> <device-model>\n"
      "  joulesctl obs <manifest.json> [other-manifest.json]\n"
      "  joulesctl lint [repo-root]\n"
      "  joulesctl whatif <script> [seed] [workers]\n",
      stderr);
  return 1;
}

int cmd_models() {
  for (const RouterSpec& spec : all_router_specs()) {
    std::printf("%-22s %-10s %3zu ports  P_base %.1f W\n", spec.model.c_str(),
                spec.vendor.c_str(), spec.total_ports(),
                spec.truth.base_power_w());
  }
  return 0;
}

int cmd_derive(const std::string& model_name, const std::string& out_path) {
  const auto spec = find_router_spec(model_name);
  if (!spec) {
    std::fprintf(stderr, "unknown model '%s' (see: joulesctl models)\n",
                 model_name.c_str());
    return 1;
  }
  SimulatedRouter dut(*spec, 20250706);
  OrchestratorOptions lab;
  lab.start_time = make_time(2025, 7, 1);
  lab.measure_s = 900;
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 20250707), lab);

  std::vector<ProfileKey> keys;
  for (const InterfaceProfile& profile : spec->truth.profiles()) {
    keys.push_back(profile.key);
  }
  const DerivedModel derived = derive_power_model(orchestrator, keys);
  std::printf("%s", render_model_table(model_name, derived.model).c_str());
  if (!out_path.empty()) {
    model_to_csv(derived.model).write_file(out_path);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_campaign(const std::string& model_name, const std::string& checkpoint,
                 double disturb_prob, const std::string& out_path) {
  const auto spec = find_router_spec(model_name);
  if (!spec) {
    std::fprintf(stderr, "unknown model '%s' (see: joulesctl models)\n",
                 model_name.c_str());
    return 1;
  }
  if (disturb_prob < 0.0 || disturb_prob > 1.0) {
    std::fputs("disturb probability must be in [0, 1]\n", stderr);
    return 1;
  }
  SimulatedRouter dut(*spec, 20250706);
  obs::Registry registry;
  CampaignOptions options;
  options.lab.start_time = make_time(2025, 7, 1);
  options.lab.measure_s = 900;
  options.checkpoint_path = checkpoint;
  // The battery's run manifest rides next to the checkpoint; refreshed after
  // every completed run, so a killed campaign keeps its audit trail too.
  options.registry = &registry;
  options.manifest_path = checkpoint + ".manifest.json";
  Campaign campaign(dut, PowerMeter(PowerMeterSpec{}, 20250707), options);
  if (disturb_prob > 0.0) {
    campaign.set_fault_plan(
        BenchFaultPlan(20250708).disturb_randomly(disturb_prob));
  }
  if (campaign.pending_replays() > 0) {
    std::printf("resuming from %s: %zu completed runs to replay\n",
                checkpoint.c_str(), campaign.pending_replays());
  }

  std::vector<ProfileKey> keys;
  for (const InterfaceProfile& profile : spec->truth.profiles()) {
    keys.push_back(profile.key);
  }
  const DerivedModel derived = derive_power_model(campaign, keys);
  std::printf("%s", render_model_table(model_name, derived.model).c_str());

  const CampaignStats& stats = campaign.stats();
  std::printf(
      "campaign: %zu windows measured, %zu retried, %zu discarded, "
      "%zu samples rejected, %zu runs replayed\n",
      stats.windows_measured, stats.windows_retried, stats.windows_discarded,
      stats.samples_rejected, stats.runs_replayed);

  TermConfidence overall = derived.base_confidence;
  std::printf("confidence: base %s\n",
              std::string(to_string(derived.base_confidence)).c_str());
  for (const ProfileDerivation& derivation : derived.derivations) {
    const ProfileQuality& q = derivation.quality;
    std::printf(
        "  %-16s trx_in %s, port %s, trx_up %s, energy %s, offset %s"
        " (%zu runs excluded)\n",
        to_string(derivation.profile.key).c_str(),
        std::string(to_string(q.trx_in)).c_str(),
        std::string(to_string(q.port)).c_str(),
        std::string(to_string(q.trx_up)).c_str(),
        std::string(to_string(q.energy)).c_str(),
        std::string(to_string(q.offset)).c_str(), q.runs_excluded);
    overall = worst(overall, q.overall());
  }

  if (!out_path.empty()) {
    model_to_csv(derived.model).write_file(out_path);
    std::printf("wrote %s\n", out_path.c_str());
  }
  if constexpr (obs::kEnabled) {
    std::printf("manifest: %s\n", options.manifest_path.string().c_str());
  }
  if (overall == TermConfidence::kLow) {
    std::fputs("campaign failed: low-confidence terms were zeroed; "
               "re-run to extend the battery\n", stderr);
    return 3;
  }
  return 0;
}

int cmd_predict(const std::string& model_path, double utilization_pct,
                int interfaces) {
  const PowerModel model = model_from_csv(CsvTable::read_file(model_path));
  const auto profiles = model.profiles();
  if (profiles.empty()) {
    std::fputs("model file has no interface profiles\n", stderr);
    return 2;
  }
  const InterfaceProfile& profile = profiles.front();
  std::vector<InterfaceConfig> configs;
  std::vector<InterfaceLoad> loads;
  const double rate =
      2.0 * utilization_pct / 100.0 * line_rate_bps(profile.key.rate);
  for (int i = 0; i < interfaces; ++i) {
    // joules-lint: allow(locale-format) — interface index, integral to_string
    configs.push_back({"if" + std::to_string(i), profile.key,
                       InterfaceState::kUp});
    loads.push_back({rate, packet_rate_for_bit_rate(rate, 800)});
  }
  const auto prediction = model.predict(configs, loads);
  const PowerBreakdown& b = prediction.breakdown;
  std::printf("%d x %s at %.1f%% utilization\n", interfaces,
              to_string(profile.key).c_str(), utilization_pct);
  std::printf("  base %.1f + port %.2f + trx %.2f + dynamic %.2f = %.1f W\n",
              b.base_w, b.port_w, b.transceiver_w(), b.dynamic_w(), b.total_w());
  return 0;
}

int cmd_datasheet(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  const ParsedDatasheet parsed = parse_datasheet(buffer.str());
  const DatasheetRecord& r = parsed.record;
  auto show = [](const char* label, const std::optional<double>& value,
                 const char* unit) {
    if (value.has_value()) {
      std::printf("  %-18s %.0f %s\n", label, *value, unit);
    } else {
      std::printf("  %-18s (not found)\n", label);
    }
  };
  std::printf("model:  %s\nvendor: %s\nseries: %s\n", r.model.c_str(),
              r.vendor.c_str(), r.series.c_str());
  show("typical power", r.typical_power_w, "W");
  show("max power", r.max_power_w, "W");
  show("max bandwidth", r.max_bandwidth_gbps, "Gbps");
  if (parsed.bandwidth_derived_from_ports) {
    std::puts("  (bandwidth derived from the port list)");
  }
  if (r.psu_count && r.psu_capacity_w) {
    std::printf("  %-18s %d x %.0f W\n", "power supplies", *r.psu_count,
                *r.psu_capacity_w);
  }
  return 0;
}

int cmd_audit(std::uint64_t seed) {
  const NetworkSimulation sim(build_switch_like_network(), seed);
  const SimTime t = sim.topology().options.study_begin + 10 * kSecondsPerDay;
  double total = 0.0;
  int active = 0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    if (!sim.active(r, t)) continue;
    total += sim.wall_power_w(r, t);
    ++active;
  }
  const TransceiverPowerReport trx = transceiver_power_report(sim, t);
  std::printf("routers active: %d of %zu\n", active, sim.router_count());
  std::printf("total wall power: %.1f kW\n", w_to_kw(total));
  std::printf("transceivers: %.1f kW (%.1f%%), %zu modules\n",
              w_to_kw(trx.total_w), 100.0 * trx.share_of_network(), trx.modules);
  return 0;
}

int cmd_zoo_stats(const std::string& dir) {
  const PowerZoo zoo = PowerZoo::load(dir);
  const PowerZoo::Stats stats = zoo.stats();
  std::printf("datasheets:       %zu\n", stats.datasheets);
  std::printf("power models:     %zu\n", stats.power_models);
  std::printf("measurements:     %zu\n", stats.measurements);
  std::printf("PSU observations: %zu\n", stats.psu_observations);
  return 0;
}

int cmd_zoo_dossier(const std::string& dir, const std::string& model) {
  const PowerZoo zoo = PowerZoo::load(dir);
  const PowerZoo::DeviceDossier dossier = zoo.dossier(model);
  std::printf("dossier: %s\n", model.c_str());
  if (dossier.datasheet && dossier.datasheet->typical_power_w) {
    std::printf("  datasheet typical: %.0f W\n",
                *dossier.datasheet->typical_power_w);
  } else {
    std::puts("  no datasheet power value");
  }
  if (dossier.model) {
    std::printf("  power model: P_base %.1f W, %zu profiles\n",
                dossier.model->base_power_w(), dossier.model->profile_count());
  } else {
    std::puts("  no power model on file");
  }
  for (const MeasurementSummary& m : dossier.measurements) {
    if (m.quality == WindowQuality::kClean) {
      std::printf("  %s median %.1f W (%zu samples)\n",
                  std::string(to_string(m.source)).c_str(), m.median_power_w,
                  m.sample_count);
    } else {
      std::printf("  %s median %.1f W (%zu samples, %zu rejected, %s)\n",
                  std::string(to_string(m.source)).c_str(), m.median_power_w,
                  m.sample_count, m.rejected_count,
                  std::string(to_string(m.quality)).c_str());
    }
  }
  std::printf("  PSU observations: %zu\n", dossier.psu_observations);
  return 0;
}

// Pretty-print one run manifest, or diff two. Exit 0 on print / no
// counter differences, 1 when a diff found differences, 2 on unreadable or
// malformed manifests.
int cmd_obs(const std::string& path_a, const std::string& path_b) {
  const auto text_a = read_text_file(path_a);
  if (!text_a) {
    std::fprintf(stderr, "cannot open %s\n", path_a.c_str());
    return 2;
  }
  const obs::ParsedManifest a = obs::parse_manifest(*text_a);
  if (path_b.empty()) {
    std::fputs(obs::render_manifest(a).c_str(), stdout);
    return 0;
  }
  const auto text_b = read_text_file(path_b);
  if (!text_b) {
    std::fprintf(stderr, "cannot open %s\n", path_b.c_str());
    return 2;
  }
  const obs::ParsedManifest b = obs::parse_manifest(*text_b);
  const std::string diff = obs::diff_manifests(a, b);
  std::fputs(diff.c_str(), stdout);
  const bool clean = diff.rfind("no differences", 0) == 0;
  return clean ? 0 : 1;
}

// The determinism lint in report mode: always prints fix hints, so a
// developer staring at a finding knows the sanctioned replacement. The bare
// `joules_lint` binary is the terse CI gate; this is the human front end.
int cmd_lint(const std::string& root) {
  lint::Config config;
  const std::string allowlist_path = root + "/tools/joules_lint/allowlist.txt";
  if (const auto text = read_text_file(allowlist_path)) {
    config.allowlist = lint::parse_allowlist(*text);
  }
  const lint::ScanResult result =
      lint::lint_tree(root, {"src", "bench", "tools", "tests"}, config);
  std::fputs(lint::render_report(result, /*fix_hints=*/true).c_str(), stdout);
  return result.findings.empty() ? 0 : 1;
}

// Scripted what-if query batches against the incremental engine, on the
// paper-scale synthetic network. One query per line, '#' starts a comment;
// the first query must be `baseline`:
//
//   baseline
//   probe 12 13 14          # feasibility walk, commits nothing
//   sleep 12 13             # reroute + commit the feasible subset
//   psu hot-standby         # or: psu active-active
//   unplug-spares
//   decommission-pop 3
int cmd_whatif(const std::string& script_path, std::uint64_t seed,
               std::size_t workers) {
  const auto text = read_text_file(script_path);
  if (!text) {
    std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
    return 2;
  }
  obs::Registry registry;  // outlives the engine, which writes counters
  WhatIfOptions options;
  options.workers = workers;
  options.registry = &registry;
  NetworkSimulation sim(build_switch_like_network(), seed);
  const SimTime eval_at =
      sim.topology().options.study_begin + 10 * kSecondsPerDay;
  WhatIfEngine engine(std::move(sim), eval_at, options);

  const auto show = [&]() {
    const WhatIfAnswer& a = engine.answers().back();
    std::printf("%-46s %10.1f W  saved %8.1f W  recomputed %4zu  hits %4zu\n",
                a.name.c_str(), a.network_power_w, a.saved_vs_baseline_w,
                a.routers_recomputed, a.cache_hits);
  };

  std::istringstream script(*text);
  std::string line;
  int line_no = 0;
  while (std::getline(script, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank / comment-only line
    if (keyword == "baseline") {
      engine.baseline_w();
    } else if (keyword == "probe" || keyword == "sleep") {
      std::vector<int> links;
      for (int link = 0; tokens >> link;) links.push_back(link);
      if (keyword == "probe") {
        engine.probe_sleep_links(links);
      } else {
        engine.sleep_links(links);
      }
      show();
      const WhatIfAnswer& a = engine.answers().back();
      std::printf("    accepted %zu link(s), rejected %zu\n",
                  a.accepted_links.size(), a.rejected_links.size());
      continue;
    } else if (keyword == "psu") {
      std::string mode;
      tokens >> mode;
      if (mode != "hot-standby" && mode != "active-active") {
        std::fprintf(stderr, "%s:%d: psu mode must be hot-standby or "
                     "active-active\n", script_path.c_str(), line_no);
        return 1;
      }
      engine.set_psu_mode(mode == "hot-standby" ? PsuMode::kHotStandby
                                                : PsuMode::kActiveActive);
    } else if (keyword == "unplug-spares") {
      engine.unplug_spares();
    } else if (keyword == "decommission-pop") {
      int pop = -1;
      if (!(tokens >> pop)) {
        std::fprintf(stderr, "%s:%d: decommission-pop needs a pop index\n",
                     script_path.c_str(), line_no);
        return 1;
      }
      engine.decommission_pop(pop);
    } else {
      std::fprintf(stderr, "%s:%d: unknown query '%s'\n", script_path.c_str(),
                   line_no, keyword.c_str());
      return 1;
    }
    show();
  }

  const WhatIfEngine::Stats& stats = engine.stats();
  std::printf(
      "queries %llu, routers recomputed %llu, cache hits %llu, feasibility "
      "checks %llu (%llu memoized), plan rebuilds %llu\n",
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.routers_recomputed),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.feasibility_checks),
      static_cast<unsigned long long>(stats.feasibility_memo_hits),
      static_cast<unsigned long long>(stats.plan_rebuilds));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "models") return cmd_models();
    if (command == "derive" && argc >= 3) {
      return cmd_derive(argv[2], argc >= 4 ? argv[3] : "");
    }
    if (command == "campaign" && argc >= 4) {
      return cmd_campaign(argv[2], argv[3],
                          argc >= 5 ? parse_double_arg(argv[4], -1.0) : 0.0,
                          argc >= 6 ? argv[5] : "");
    }
    if (command == "predict" && argc >= 4) {
      return cmd_predict(argv[2], parse_double_arg(argv[3], 0.0),
                         argc >= 5 ? std::atoi(argv[4]) : 1);
    }
    if (command == "datasheet" && argc >= 3) return cmd_datasheet(argv[2]);
    if (command == "audit") {
      return cmd_audit(argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 7);
    }
    if (command == "zoo-stats" && argc >= 3) return cmd_zoo_stats(argv[2]);
    if (command == "zoo-dossier" && argc >= 4) {
      return cmd_zoo_dossier(argv[2], argv[3]);
    }
    if (command == "obs" && argc >= 3) {
      return cmd_obs(argv[2], argc >= 4 ? argv[3] : "");
    }
    if (command == "lint") return cmd_lint(argc >= 3 ? argv[2] : ".");
    if (command == "whatif" && argc >= 3) {
      return cmd_whatif(
          argv[2], argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 7,
          argc >= 5 ? static_cast<std::size_t>(std::atoi(argv[4])) : 1);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  return usage();
}
