// bench_compare — CI gate comparing two google-benchmark JSON files by their
// deterministic work counters (see compare.hpp for why not wall time).
//
//   bench_compare <baseline.json> <current.json>
//       [--threshold X] [--prefix P] [--floor-prefix F]... [--max-prefix M]...
//
// --floor-prefix is repeatable; a counter matching any floor prefix is gated
// in the inverted (must-not-shrink) direction. --max-prefix is repeatable
// too; a counter matching any max prefix is a ceiling — the gate fails the
// moment it exceeds its baseline, with no threshold slack (the
// bounded-memory contract behind the scale-tier CI job).
//
// Exit codes: 0 gate passes, 1 regression(s) found, 2 usage or I/O error.
#include <charconv>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "bench_compare/compare.hpp"
#include "util/atomic_file.hpp"

using namespace joules;

namespace {

// Locale-independent CLI double parse (from_chars, never atof).
std::optional<double> parse_double_arg(const char* text) {
  double value = 0.0;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, value);
  if (ec != std::errc{} || ptr != end || end == text) return std::nullopt;
  return value;
}

int usage() {
  std::fputs(
      "usage: bench_compare <baseline.json> <current.json>"
      " [--threshold X] [--prefix P] [--floor-prefix F]..."
      " [--max-prefix M]...\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  benchcmp::CompareOptions options;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      const auto parsed = parse_double_arg(argv[++i]);
      if (!parsed.has_value() || *parsed <= 0.0) {
        std::fputs("bench_compare: bad --threshold\n", stderr);
        return 2;
      }
      options.threshold = *parsed;
    } else if (std::strcmp(argv[i], "--prefix") == 0 && i + 1 < argc) {
      options.counter_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--floor-prefix") == 0 && i + 1 < argc) {
      options.floor_prefixes.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-prefix") == 0 && i + 1 < argc) {
      options.max_prefixes.emplace_back(argv[++i]);
    } else {
      return usage();
    }
  }

  try {
    const auto baseline_text = read_text_file(argv[1]);
    if (!baseline_text) {
      std::fprintf(stderr, "bench_compare: cannot open %s\n", argv[1]);
      return 2;
    }
    const auto current_text = read_text_file(argv[2]);
    if (!current_text) {
      std::fprintf(stderr, "bench_compare: cannot open %s\n", argv[2]);
      return 2;
    }
    const auto baseline = benchcmp::parse_benchmark_counters(*baseline_text);
    const auto current = benchcmp::parse_benchmark_counters(*current_text);
    const benchcmp::CompareResult result =
        benchcmp::compare(baseline, current, options);
    std::fputs(benchcmp::render_report(result, options).c_str(), stdout);
    return result.ok() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_compare: %s\n", error.what());
    return 2;
  }
}
