// The counter-based perf gate behind CI's perf-smoke job.
//
// Wall time on shared CI runners is noise: a neighbour's build can double a
// benchmark's real_time without any code change. The deterministic work
// counters the benches export (obs_trace.samples, steps, routers, ...) are
// not: they are pure functions of the workload, identical on every machine.
// So the gate compares *counters* between a committed baseline JSON and a
// fresh run, and fails only when a counter grew beyond the threshold — which
// means the code now does more work per iteration (an accidental quadratic,
// a lost skip path), something runner noise cannot cause or excuse.
//
// Input is google-benchmark's JSON output format; counters are the numeric
// members of each benchmark object beyond the harness's own fields
// (real_time, cpu_time, iterations, ...), which are ignored by design.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace joules::benchcmp {

struct CounterSample {
  std::string benchmark;  // e.g. "BM_NetworkTraces/4"
  std::string counter;    // e.g. "obs_trace.samples"
  double value = 0.0;
};

struct CompareOptions {
  // Fail when current / baseline exceeds this (and on a counter vanishing or
  // appearing from zero). 1.5 tolerates deliberate small growth — block-size
  // tweaks shifting trace.blocks — while catching anything super-linear.
  double threshold = 1.5;
  // Only counters whose name starts with this participate; "" gates all.
  std::string counter_prefix;
  // Counters whose name starts with any of these are *floor* counters: they
  // measure work the code managed to skip (obs_trace.samples_reused,
  // obs_whatif.cache_hits, ...), so for them the regression direction is
  // inverted — the gate fails when baseline / current exceeds the threshold
  // (a lost skip path), and growth is never a finding. Empty means no floor
  // counters. Floor counters with a zero baseline are ignored (nothing
  // pinned); a floor counter that drops to zero from a positive baseline
  // always fails.
  std::vector<std::string> floor_prefixes;
  // Counters whose name starts with any of these are *ceiling* counters:
  // they pin a resource bound (obs_trace.peak_resident_samples, ...), so the
  // gate fails the moment current exceeds baseline — no threshold slack,
  // because the counters are deterministic and a bounded-memory contract
  // that "only" doubled is still broken. Shrinking is never a finding
  // (commit the smaller baseline to ratchet down). A counter matching both a
  // max and a floor prefix is treated as a ceiling.
  std::vector<std::string> max_prefixes;
};

struct Finding {
  enum class Kind {
    kGrew,              // current / baseline > threshold
    kAppeared,          // baseline 0 (or absent as a value), current > 0
    kShrank,            // floor counter: baseline / current > threshold
    kExceeded,          // ceiling counter: current > baseline
    kMissingBenchmark,  // baseline benchmark absent from the current run
    kMissingCounter,    // benchmark present but the counter vanished
  };
  Kind kind = Kind::kGrew;
  std::string benchmark;
  std::string counter;
  double baseline = 0.0;
  double current = 0.0;
};

struct CompareResult {
  std::vector<Finding> findings;   // empty = gate passes
  std::size_t counters_checked = 0;
  [[nodiscard]] bool ok() const noexcept { return findings.empty(); }
};

// Extracts (benchmark, counter, value) triples from google-benchmark JSON.
// Counters are numeric members of each "benchmarks" entry that are not
// harness fields; `counter_prefix` filters by name ("" keeps all). Repeated
// entries (aggregates) keep the first occurrence of each (benchmark,
// counter). Throws std::invalid_argument on malformed JSON or a missing
// "benchmarks" array.
[[nodiscard]] std::vector<CounterSample> parse_benchmark_counters(
    std::string_view json_text, std::string_view counter_prefix = "");

// Walks every baseline counter and checks it against the current run. The
// baseline drives the loop: counters only the current run has are informative
// (new instrumentation), never failures — committing the new baseline adopts
// them.
[[nodiscard]] CompareResult compare(const std::vector<CounterSample>& baseline,
                                    const std::vector<CounterSample>& current,
                                    const CompareOptions& options = {});

// Human-readable report (one line per finding + a summary line).
[[nodiscard]] std::string render_report(const CompareResult& result,
                                        const CompareOptions& options);

}  // namespace joules::benchcmp
