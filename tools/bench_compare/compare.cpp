#include "bench_compare/compare.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <stdexcept>

#include "util/json.hpp"

namespace joules::benchcmp {
namespace {

// google-benchmark's own per-entry fields; everything numeric beyond these
// is a user counter.
constexpr std::array<std::string_view, 14> kHarnessFields = {
    "name",       "family_index",   "per_family_instance_index",
    "run_name",   "run_type",       "repetitions",
    "repetition_index",             "threads",
    "iterations", "real_time",      "cpu_time",
    "time_unit",  "aggregate_name", "aggregate_unit",
};

bool is_harness_field(std::string_view key) {
  return std::find(kHarnessFields.begin(), kHarnessFields.end(), key) !=
         kHarnessFields.end();
}

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

const CounterSample* find_sample(const std::vector<CounterSample>& samples,
                                 const std::string& benchmark,
                                 const std::string& counter) {
  for (const CounterSample& sample : samples) {
    if (sample.benchmark == benchmark && sample.counter == counter) {
      return &sample;
    }
  }
  return nullptr;
}

bool has_benchmark(const std::vector<CounterSample>& samples,
                   const std::string& benchmark) {
  return std::any_of(samples.begin(), samples.end(),
                     [&](const CounterSample& sample) {
                       return sample.benchmark == benchmark;
                     });
}

}  // namespace

std::vector<CounterSample> parse_benchmark_counters(
    std::string_view json_text, std::string_view counter_prefix) {
  const Json root = Json::parse(json_text);
  const Json* benchmarks = root.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    throw std::invalid_argument(
        "bench_compare: no \"benchmarks\" array (not google-benchmark JSON?)");
  }
  std::vector<CounterSample> out;
  for (const Json& entry : benchmarks->as_array()) {
    const Json* name = entry.find("name");
    if (name == nullptr) continue;
    for (const Json::Member& member : entry.as_object()) {
      if (is_harness_field(member.first)) continue;
      const Json::Kind kind = member.second.kind();
      if (kind != Json::Kind::kInt && kind != Json::Kind::kDouble) continue;
      if (member.first.rfind(counter_prefix, 0) != 0) continue;
      if (find_sample(out, name->as_string(), member.first) != nullptr) {
        continue;  // aggregate repetition rows: first wins
      }
      out.push_back(CounterSample{name->as_string(), member.first,
                                  member.second.as_double()});
    }
  }
  return out;
}

CompareResult compare(const std::vector<CounterSample>& baseline,
                      const std::vector<CounterSample>& current,
                      const CompareOptions& options) {
  if (options.threshold <= 0.0) {
    throw std::invalid_argument("bench_compare: threshold must be positive");
  }
  CompareResult result;
  for (const CounterSample& expected : baseline) {
    if (expected.counter.rfind(options.counter_prefix, 0) != 0) continue;
    ++result.counters_checked;
    Finding finding;
    finding.benchmark = expected.benchmark;
    finding.counter = expected.counter;
    finding.baseline = expected.value;
    const CounterSample* actual =
        find_sample(current, expected.benchmark, expected.counter);
    if (actual == nullptr) {
      finding.kind = has_benchmark(current, expected.benchmark)
                         ? Finding::Kind::kMissingCounter
                         : Finding::Kind::kMissingBenchmark;
      result.findings.push_back(std::move(finding));
      continue;
    }
    finding.current = actual->value;
    // Ceiling counters pin a resource bound: any growth over the committed
    // baseline is a broken contract, with no threshold slack (the counters
    // are deterministic, so exact comparison is meaningful).
    const bool is_max = std::any_of(
        options.max_prefixes.begin(), options.max_prefixes.end(),
        [&](const std::string& prefix) {
          return !prefix.empty() && expected.counter.rfind(prefix, 0) == 0;
        });
    if (is_max) {
      if (actual->value > expected.value) {
        finding.kind = Finding::Kind::kExceeded;
        result.findings.push_back(std::move(finding));
      }
      continue;
    }
    // Floor counters measure *avoided* work (a skip path's hit count), so
    // only shrinking is a regression: growth means the optimisation got
    // better, and a zero baseline pins nothing.
    const bool is_floor = std::any_of(
        options.floor_prefixes.begin(), options.floor_prefixes.end(),
        [&](const std::string& prefix) {
          return !prefix.empty() && expected.counter.rfind(prefix, 0) == 0;
        });
    if (is_floor) {
      if (expected.value <= 0.0) continue;
      if (actual->value <= 0.0 ||
          expected.value / actual->value > options.threshold) {
        finding.kind = Finding::Kind::kShrank;
        result.findings.push_back(std::move(finding));
      }
      continue;
    }
    // Counters are non-negative; <= 0 is the "no work recorded" case.
    if (expected.value <= 0.0) {
      if (actual->value > 0.0) {
        finding.kind = Finding::Kind::kAppeared;
        result.findings.push_back(std::move(finding));
      }
      continue;
    }
    if (actual->value / expected.value > options.threshold) {
      finding.kind = Finding::Kind::kGrew;
      result.findings.push_back(std::move(finding));
    }
  }
  return result;
}

std::string render_report(const CompareResult& result,
                          const CompareOptions& options) {
  std::string out;
  for (const Finding& finding : result.findings) {
    out += finding.benchmark + " " + finding.counter + ": ";
    switch (finding.kind) {
      case Finding::Kind::kGrew:
        out += format_value(finding.baseline) + " -> " +
               format_value(finding.current) + " (x" +
               format_value(finding.current / finding.baseline) +
               " > threshold x" + format_value(options.threshold) + ")";
        break;
      case Finding::Kind::kAppeared:
        out += "0 -> " + format_value(finding.current) +
               " (work appeared where the baseline had none)";
        break;
      case Finding::Kind::kShrank:
        out += format_value(finding.baseline) + " -> " +
               format_value(finding.current) +
               " (floor counter shrank beyond threshold x" +
               format_value(options.threshold) + " — skip path lost?)";
        break;
      case Finding::Kind::kExceeded:
        out += format_value(finding.baseline) + " -> " +
               format_value(finding.current) +
               " (ceiling counter exceeded its baseline — resource bound "
               "broken)";
        break;
      case Finding::Kind::kMissingBenchmark:
        out += "benchmark missing from the current run";
        break;
      case Finding::Kind::kMissingCounter:
        out += "counter missing from the current run";
        break;
    }
    out += "\n";
  }
  char summary[128];
  std::snprintf(summary, sizeof summary,
                "%zu counter(s) checked, %zu regression(s)\n",
                result.counters_checked, result.findings.size());
  out += summary;
  return out;
}

}  // namespace joules::benchcmp
