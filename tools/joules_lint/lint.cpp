#include "joules_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <regex>
#include <stdexcept>
#include <tuple>

#include "joules_lint/project.hpp"
#include "util/atomic_file.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace joules::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table. Patterns live in rule_findings() below; this table is the
// public contract (ids, rationale, remediation).

const std::vector<Rule>& rule_table() {
  static const std::vector<Rule> kRules = {
      {"unseeded-rng",
       "default-constructed std::mt19937 draws an implementation-defined "
       "sequence",
       "seed explicitly, or use util/rng.hpp (Rng takes a mandatory seed)"},
      {"random-device",
       "std::random_device yields different entropy every run",
       "thread an explicit std::uint64_t seed down from the caller"},
      {"libc-rand",
       "rand()/srand() share hidden global state across the process",
       "use a locally seeded joules::Rng stream (Rng::fork for substreams)"},
      {"wall-clock",
       "reading the host clock makes simulation output depend on when it ran",
       "derive time from SimTime / the lab clock; real-I/O deadlines belong "
       "in net::Deadline (allowlisted)"},
      {"float-equality",
       "== / != against a float literal is exact bit comparison",
       "compare against an epsilon, or suppress with a reason when an "
       "exact-zero sentinel/guard is intended"},
      {"unstable-float-sort",
       "std::sort with a comparator over float keys resolves equal keys in "
       "implementation-defined order (ties differ across platforms/STLs)",
       "use std::stable_sort with an explicit total-order tie-break (e.g. "
       "the element index)"},
      {"unordered-iteration",
       "unordered container iteration order is unspecified and varies across "
       "libc++/libstdc++ and runs",
       "copy keys into a sorted vector (or use std::map) before serializing "
       "or hashing"},
      {"locale-format",
       "locale-sensitive number formatting/parsing breaks exact %.17g "
       "checkpoint round trips",
       "format with snprintf %.17g / format_number, parse with "
       "std::from_chars; never touch the global locale"},
      {"layer-dag",
       "a src/ include pointing up the layer DAG (util -> stats/obs -> "
       "datasheet/device/psu/meter/model -> traffic/telemetry/network/sleep "
       "-> zoo/netpowerbench/net -> autopower), or pulling tests/ or tool "
       "headers into src/, creates a cyclic or inverted layer dependency",
       "move the shared type down a layer or invert the dependency behind a "
       "seam interface; tests/ and tools/ code never leaks into src/"},
      {"reactor-blocking-call",
       "a blocking call (sleeps, blocking socket I/O) reachable from a "
       "JOULES_REACTOR_CONTEXT function parks every connection the "
       "single-threaded poll loop serves",
       "return a deadline or latch a stall for the reactor to schedule; the "
       "only sanctioned blocking point is the poll_fds seam"},
      {"lock-order",
       "the JOULES_ACQUIRED_BEFORE/AFTER annotations describe a cyclic lock "
       "acquisition order; two threads honouring different orders deadlock",
       "pick one global acquisition order and fix the annotations (and the "
       "call sites the compiler then flags) to match"},
      {"bad-suppression",
       "a suppression pragma must name a known rule and carry a reason",
       "write the pragma as: allow(<rule>) followed by a dash and a reason"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Comment / string stripping.

enum class State {
  kCode,
  kLineComment,
  kBlockComment,
  kString,
  kChar,
  kRawString,
};

}  // namespace

MaskedSource mask_source(std::string_view source) {
  MaskedSource out;
  std::string code_line;
  std::string comment_line;
  State state = State::kCode;
  std::string raw_delim;  // delimiter for the active raw string literal

  const auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (code_line.empty() ||
                    !(std::isalnum(static_cast<unsigned char>(code_line.back())) ||
                      code_line.back() == '_'))) {
          // R"delim( ... )delim"
          const std::size_t open = source.find('(', i + 2);
          if (open == std::string_view::npos) {
            code_line += c;  // stray R" — treat as code
            break;
          }
          const std::size_t delim_len = open - (i + 2);
          raw_delim = std::string(source.substr(i + 2, delim_len));
          state = State::kRawString;
          code_line += "R\"";
          code_line += std::string(delim_len + 1, ' ');  // delimiter and '('
          i = open;
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
        } else if (c == '\'') {
          // A quote directly after an identifier/digit char is a digit
          // separator (60'000) or literal suffix, not a char literal.
          if (!code_line.empty() &&
              (std::isalnum(static_cast<unsigned char>(code_line.back())) ||
               code_line.back() == '_')) {
            code_line += '\'';
          } else {
            state = State::kChar;
            code_line += '\'';
          }
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (source.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          code_line += '"';
          i += close.size() - 1;
        } else {
          code_line += ' ';
        }
        break;
      }
    }
  }
  if (!code_line.empty() || !comment_line.empty()) flush_line();
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Suppression pragmas.

struct Pragma {
  std::vector<std::string> rules;
  bool malformed = false;
  std::string error;
};

// Parses "joules-lint: allow(rule[, rule]) -- reason" from a line's comment
// text. Returns nullopt when the comment is not a pragma at all.
std::optional<Pragma> parse_pragma(std::string_view comment_text) {
  static constexpr std::string_view kTag = "joules-lint:";
  const std::string text = trim(comment_text);
  if (!starts_with(text, kTag)) return std::nullopt;
  Pragma pragma;
  std::string rest = trim(std::string_view(text).substr(kTag.size()));
  if (!starts_with(rest, "allow(")) {
    pragma.malformed = true;
    pragma.error = "pragma must use allow(<rule>)";
    return pragma;
  }
  const std::size_t close = rest.find(')');
  if (close == std::string::npos) {
    pragma.malformed = true;
    pragma.error = "unterminated allow(";
    return pragma;
  }
  for (const std::string& id : split(rest.substr(6, close - 6), ',')) {
    const std::string rule = trim(id);
    if (!is_known_rule(rule)) {
      pragma.malformed = true;
      pragma.error = "unknown rule '" + rule + "'";
      return pragma;
    }
    pragma.rules.push_back(rule);
  }
  if (pragma.rules.empty()) {
    pragma.malformed = true;
    pragma.error = "allow() names no rule";
    return pragma;
  }
  // Everything after ')' minus separator punctuation (ASCII dashes, colons,
  // or an em/en dash) must leave a non-empty reason.
  std::string reason = trim(rest.substr(close + 1));
  std::size_t skip = 0;
  while (skip < reason.size() &&
         (reason[skip] == '-' || reason[skip] == ':' ||
          static_cast<unsigned char>(reason[skip]) >= 0x80)) {
    ++skip;
  }
  reason = trim(std::string_view(reason).substr(skip));
  if (reason.empty()) {
    pragma.malformed = true;
    pragma.error = "suppression carries no reason";
  }
  return pragma;
}

// ---------------------------------------------------------------------------
// Pattern matching on masked code.

struct LineHit {
  std::size_t line_index;  // 0-based
  std::string_view rule;
  std::string message;
};

const std::regex& re_unseeded_rng() {
  static const std::regex re(
      R"(\bmt19937(_64)?\b\s*(\w+\s*)?(\(\s*\)|\{\s*\}|;))");
  return re;
}
const std::regex& re_random_device() {
  static const std::regex re(R"(\brandom_device\b)");
  return re;
}
const std::regex& re_libc_rand() {
  static const std::regex re(R"(\bs?rand\s*\()");
  return re;
}
const std::regex& re_wall_clock() {
  static const std::regex re(
      R"(\b(system_clock|steady_clock|high_resolution_clock|gettimeofday|clock_gettime|localtime|gmtime)\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
  return re;
}
// A float literal: 1.0, .5, 1., 2e9, 1.5e-3 — optional f/F/l/L suffix.
constexpr const char* kFloatLit =
    R"([-+]?(\d+\.\d*|\.\d+|\d+[eE][-+]?\d+|\d+\.\d*[eE][-+]?\d+)[fFlL]?)";
const std::regex& re_float_eq_rhs() {
  static const std::regex re(std::string(R"((==|!=)\s*)") + kFloatLit);
  return re;
}
const std::regex& re_float_eq_lhs() {
  static const std::regex re(std::string(kFloatLit) + R"(\s*(==|!=))");
  return re;
}
const std::regex& re_std_sort_call() {
  static const std::regex re(R"(\bstd\s*::\s*sort\s*\()");
  return re;
}
// A lambda introducer immediately followed by its parameter list — the
// comparator form; subscripts like parts[0].begin() do not match.
const std::regex& re_lambda_comparator() {
  static const std::regex re(R"(\[[^\[\]]*\]\s*\()");
  return re;
}
// Float evidence inside a comparator body: a double/float token, a division
// (ratios like load/capacity), or a float literal.
const std::regex& re_float_key_evidence() {
  static const std::regex re(std::string(R"(\bdouble\b|\bfloat\b|/|)") +
                             kFloatLit);
  return re;
}
const std::regex& re_unordered_decl() {
  static const std::regex re(
      R"(\bunordered_(map|set)\b.*>\s*&?\s*(\w+)\s*[;={)])");
  return re;
}
const std::regex& re_range_for() {
  static const std::regex re(R"(\bfor\s*\(([^)]*)\))");
  return re;
}
const std::regex& re_locale_global() {
  static const std::regex re(
      R"(\bsetlocale\s*\(|\bstd\s*::\s*locale\b|\.imbue\s*\()");
  return re;
}
const std::regex& re_locale_serialization() {
  static const std::regex re(
      R"(\bstd\s*::\s*to_string\s*\(|\bstd\s*::\s*stod\s*\(|\bstd\s*::\s*stof\s*\(|\bstrtod\s*\(|\batof\s*\()");
  return re;
}
// Files that read or write persistent state: any mention of these tokens in
// (masked) code puts the whole file under the stricter locale-format rule.
const std::regex& re_serialization_marker() {
  static const std::regex re(
      R"(checkpoint|save_state|write_file|serialize|Checkpoint|SaveState)");
  return re;
}

// The range expression of a range-for: text after the first ':' that is not
// part of a '::' scope operator.
std::optional<std::string> range_for_expr(const std::string& head) {
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (head[i] != ':') continue;
    if (i + 1 < head.size() && head[i + 1] == ':') {
      ++i;
      continue;
    }
    if (i > 0 && head[i - 1] == ':') continue;
    return head.substr(i + 1);
  }
  return std::nullopt;
}

bool contains_word(std::string_view haystack, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = haystack.find(word, pos)) != std::string_view::npos) {
    const bool left_ok =
        pos == 0 || !(std::isalnum(static_cast<unsigned char>(haystack[pos - 1])) ||
                      haystack[pos - 1] == '_');
    const std::size_t end = pos + word.size();
    const bool right_ok =
        end >= haystack.size() ||
        !(std::isalnum(static_cast<unsigned char>(haystack[end])) ||
          haystack[end] == '_');
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

std::vector<LineHit> rule_findings(const MaskedSource& masked) {
  std::vector<LineHit> hits;
  const auto scan = [&](const std::regex& re, std::string_view rule,
                        std::string message) {
    for (std::size_t i = 0; i < masked.code.size(); ++i) {
      if (std::regex_search(masked.code[i], re)) {
        hits.push_back({i, rule, message});
      }
    }
  };

  scan(re_unseeded_rng(), "unseeded-rng",
       "default-constructed mt19937; thread an explicit seed");
  scan(re_random_device(), "random-device",
       "std::random_device is nondeterministic across runs");
  scan(re_libc_rand(), "libc-rand", "rand()/srand() use hidden global state");
  scan(re_wall_clock(), "wall-clock",
       "host clock read in simulation code; use SimTime / net::Deadline");
  scan(re_float_eq_rhs(), "float-equality",
       "exact == / != against a float literal");
  for (std::size_t i = 0; i < masked.code.size(); ++i) {
    // lhs form, skipping lines the rhs form already flagged.
    if (std::regex_search(masked.code[i], re_float_eq_lhs()) &&
        !std::regex_search(masked.code[i], re_float_eq_rhs())) {
      hits.push_back({i, "float-equality",
                      "exact == / != against a float literal"});
    }
  }

  // unordered-iteration: collect declared unordered container names, then
  // flag range-for statements over them (or over unordered temporaries).
  std::vector<std::string> unordered_names;
  for (const std::string& line : masked.code) {
    std::smatch m;
    if (std::regex_search(line, m, re_unordered_decl())) {
      unordered_names.push_back(m[2].str());
    }
  }
  for (std::size_t i = 0; i < masked.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(masked.code[i], m, re_range_for())) continue;
    const auto expr = range_for_expr(m[1].str());
    if (!expr) continue;
    const bool over_unordered =
        expr->find("unordered_") != std::string::npos ||
        std::any_of(unordered_names.begin(), unordered_names.end(),
                    [&](const std::string& name) {
                      return contains_word(*expr, name);
                    });
    if (over_unordered) {
      hits.push_back({i, "unordered-iteration",
                      "iteration order of unordered containers is "
                      "unspecified; sort keys before use"});
    }
  }

  // unstable-float-sort: std::sort with a lambda comparator whose body shows
  // float evidence (double/float tokens, a ratio, or a float literal). The
  // call statement may span lines; join from the match until its parens
  // close (bounded), then look for the comparator past the lambda introducer.
  for (std::size_t i = 0; i < masked.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(masked.code[i], m, re_std_sort_call())) continue;
    std::string statement =
        masked.code[i].substr(static_cast<std::size_t>(m.position(0)));
    int depth = 0;
    bool closed = false;
    const auto update_depth = [&](const std::string& text) {
      for (const char c : text) {
        if (c == '(') ++depth;
        if (c == ')' && --depth == 0) return true;
      }
      return false;
    };
    closed = update_depth(statement);
    for (std::size_t j = i + 1; !closed && j < masked.code.size() && j < i + 12;
         ++j) {
      statement += ' ';
      statement += masked.code[j];
      closed = update_depth(masked.code[j]);
    }
    std::smatch lambda;
    if (!std::regex_search(statement, lambda, re_lambda_comparator())) continue;
    const std::string comparator =
        statement.substr(static_cast<std::size_t>(lambda.position(0)));
    if (std::regex_search(comparator, re_float_key_evidence())) {
      hits.push_back({i, "unstable-float-sort",
                      "std::sort comparator over float keys; equal-key order "
                      "is implementation-defined"});
    }
  }

  // locale-format: global bans everywhere; formatting/parsing bans only in
  // files that touch persistent state.
  scan(re_locale_global(), "locale-format",
       "global locale mutation changes numeric formatting process-wide");
  const bool serialization_file = std::any_of(
      masked.code.begin(), masked.code.end(), [](const std::string& line) {
        return std::regex_search(line, re_serialization_marker());
      });
  if (serialization_file) {
    scan(re_locale_serialization(), "locale-format",
         "locale-sensitive number conversion in a serialization path; use "
         "%.17g / std::from_chars");
  }
  return hits;
}

}  // namespace

bool allowlisted(const Config& config, std::string_view file,
                 std::string_view rule) {
  for (const AllowlistEntry& entry : config.allowlist) {
    if (entry.rule != rule) continue;
    if (file == entry.path) return true;
    if (starts_with(file, entry.path) &&
        (entry.path.back() == '/' || file[entry.path.size()] == '/')) {
      return true;
    }
  }
  return false;
}

std::vector<std::vector<std::string>> collect_suppressions(
    const MaskedSource& masked) {
  std::vector<std::vector<std::string>> allowed(masked.comments.size() + 1);
  for (std::size_t i = 0; i < masked.comments.size(); ++i) {
    if (masked.comments[i].empty()) continue;
    const auto pragma = parse_pragma(masked.comments[i]);
    if (!pragma || pragma->malformed) continue;
    const bool standalone = trim(masked.code[i]).empty();
    const std::size_t target = standalone ? i + 1 : i;
    allowed[target].insert(allowed[target].end(), pragma->rules.begin(),
                           pragma->rules.end());
  }
  return allowed;
}

const std::vector<Rule>& rules() { return rule_table(); }

bool is_known_rule(std::string_view id) {
  const auto& table = rule_table();
  return std::any_of(table.begin(), table.end(),
                     [&](const Rule& rule) { return rule.id == id; });
}

std::vector<AllowlistEntry> parse_allowlist(std::string_view text) {
  std::vector<AllowlistEntry> entries;
  std::size_t line_no = 0;
  for (const std::string& raw : split_lines(text)) {
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t first_space = line.find(' ');
    const std::size_t second_space =
        first_space == std::string::npos ? std::string::npos
                                         : line.find(' ', first_space + 1);
    if (second_space == std::string::npos) {
      throw std::invalid_argument(
          "allowlist line " + std::to_string(line_no) +
          ": expected '<path> <rule> <reason>'");
    }
    AllowlistEntry entry;
    entry.path = trim(line.substr(0, first_space));
    entry.rule = trim(line.substr(first_space + 1, second_space - first_space - 1));
    entry.reason = trim(line.substr(second_space + 1));
    if (!is_known_rule(entry.rule)) {
      throw std::invalid_argument("allowlist line " + std::to_string(line_no) +
                                  ": unknown rule '" + entry.rule + "'");
    }
    if (entry.reason.empty()) {
      throw std::invalid_argument("allowlist line " + std::to_string(line_no) +
                                  ": entry carries no reason");
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view source,
                                 const Config& config) {
  const MaskedSource masked = mask_source(source);
  const std::vector<std::string> raw_lines = split_lines(source);

  // Per-line suppression sets from pragmas; malformed pragmas are findings.
  // A pragma sharing its line with code suppresses that line; a pragma on a
  // standalone comment line suppresses the line below it.
  std::vector<Finding> findings;
  for (std::size_t i = 0; i < masked.comments.size(); ++i) {
    if (masked.comments[i].empty()) continue;
    const auto pragma = parse_pragma(masked.comments[i]);
    if (pragma && pragma->malformed) {
      findings.push_back({std::string(path), i + 1, "bad-suppression",
                          pragma->error,
                          i < raw_lines.size() ? trim(raw_lines[i]) : ""});
    }
  }
  const std::vector<std::vector<std::string>> allowed =
      collect_suppressions(masked);

  for (const LineHit& hit : rule_findings(masked)) {
    const std::size_t i = hit.line_index;
    if (i < allowed.size() &&
        std::find(allowed[i].begin(), allowed[i].end(),
                  std::string(hit.rule)) != allowed[i].end()) {
      continue;
    }
    if (allowlisted(config, path, hit.rule)) continue;
    findings.push_back({std::string(path), i + 1, std::string(hit.rule),
                        hit.message,
                        i < raw_lines.size() ? trim(raw_lines[i]) : ""});
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

ScanResult lint_tree(const std::filesystem::path& root,
                     const std::vector<std::string>& subdirs,
                     const Config& config, std::size_t jobs) {
  const std::vector<FileSource> files = load_tree(root, subdirs);

  ScanResult result;
  result.files_scanned = files.size();

  // Per-file rules fan out over the pool; findings land in per-file slots
  // and merge in file order, so the job count never changes the output.
  std::vector<std::vector<Finding>> slots(files.size());
  const auto lint_range = [&](std::size_t begin, std::size_t end,
                              std::size_t /*slot*/) {
    for (std::size_t i = begin; i < end; ++i) {
      slots[i] = lint_source(files[i].path, files[i].source, config);
    }
  };
  if (jobs == 1 || files.empty()) {
    lint_range(0, files.size(), 0);
  } else {
    ThreadPool pool(jobs);
    pool.parallel_for(0, files.size(), lint_range);
  }
  for (std::vector<Finding>& slot : slots) {
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(slot.begin()),
                           std::make_move_iterator(slot.end()));
  }

  // Cross-TU pass over the whole set, then one final deterministic order.
  std::vector<Finding> project = lint_project(files, config);
  result.findings.insert(result.findings.end(),
                         std::make_move_iterator(project.begin()),
                         std::make_move_iterator(project.end()));
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return result;
}

std::string render_report(const ScanResult& result, bool fix_hints) {
  std::string out;
  std::vector<std::string_view> fired;
  for (const Finding& finding : result.findings) {
    out += finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message + "\n";
    if (!finding.excerpt.empty()) {
      out += "    " + finding.excerpt + "\n";
    }
    if (std::find(fired.begin(), fired.end(), finding.rule) == fired.end()) {
      fired.push_back(finding.rule);
    }
  }
  out += std::to_string(result.findings.size()) + " finding(s) in " +
         std::to_string(result.files_scanned) + " file(s) scanned\n";
  if (fix_hints && !fired.empty()) {
    out += "\nfix hints:\n";
    for (const Rule& rule : rules()) {
      if (std::find(fired.begin(), fired.end(), rule.id) == fired.end()) {
        continue;
      }
      out += "  " + std::string(rule.id) + ": " + std::string(rule.summary) +
             "\n    fix: " + std::string(rule.fix_hint) + "\n";
    }
  }
  return out;
}

}  // namespace joules::lint
