// joules_lint — the repo's determinism lint.
//
// The library's scientific claim is bit-identical replay: parallel sweeps,
// fault hashing, and `%.17g` checkpoints must reproduce exactly, run to run,
// machine to machine. The compiler cannot enforce that; this lint bans the
// constructs that silently break it:
//
//   unseeded-rng         default-constructed std::mt19937 / mt19937_64
//   random-device        std::random_device (entropy differs per run)
//   libc-rand            rand() / srand() (global hidden state)
//   wall-clock           system_clock / steady_clock / time(nullptr) / ... in
//                        simulation code (lab time comes from SimTime)
//   float-equality       == / != against a floating-point literal
//   unordered-iteration  range-for over an unordered_map/unordered_set
//                        (iteration order is unspecified; feeding it to a
//                        checkpoint writer or hash breaks replay)
//   locale-format        setlocale / std::locale / imbue anywhere, plus
//                        std::to_string / stod / stof / strtod / atof inside
//                        serialization code (locale-dependent decimal point)
//
// Three further rule families need the whole tree at once (include edges,
// call graphs, lock annotations span files); they live in the project pass
// (joules_lint/project.hpp) and run automatically from lint_tree:
//
//   layer-dag              src/ include edges must point down the layer DAG
//   reactor-blocking-call  no blocking call reachable from a function marked
//                          JOULES_REACTOR_CONTEXT
//   lock-order             JOULES_ACQUIRED_BEFORE/AFTER annotations must not
//                          form a cycle
//
// Matching runs on comment- and string-stripped source, so documentation and
// format strings never trip a rule. Two suppression channels exist, and both
// must carry a written reason:
//
//   * a per-line pragma comment of the form
//     "joules-lint: allow(<rule>) -- <reason>" on the offending line, or
//   * an entry in the checked-in allowlist (tools/joules_lint/allowlist.txt):
//     "<path> <rule> <reason>" per line, matching a file or directory prefix.
//
// A pragma with no reason, or naming an unknown rule, is itself a finding
// (rule id "bad-suppression"); a malformed allowlist throws.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace joules::lint {

struct Rule {
  std::string_view id;
  std::string_view summary;   // one-line "why this is banned"
  std::string_view fix_hint;  // shown by --fix-hints / joulesctl lint
};

// The rule table, in reporting order. Stable ids; tests and the allowlist
// reference them by name.
[[nodiscard]] const std::vector<Rule>& rules();
[[nodiscard]] bool is_known_rule(std::string_view id);

struct Finding {
  std::string file;     // repo-relative path, forward slashes
  std::size_t line = 0; // 1-based
  std::string rule;
  std::string message;
  std::string excerpt;  // trimmed source line
};

struct AllowlistEntry {
  std::string path;    // repo-relative file path or directory prefix
  std::string rule;
  std::string reason;  // mandatory
};

// Parses the allowlist format: one "<path> <rule> <reason...>" entry per
// line; '#' starts a comment. Throws std::invalid_argument on a malformed
// line, an unknown rule id, or a missing reason.
[[nodiscard]] std::vector<AllowlistEntry> parse_allowlist(std::string_view text);

struct Config {
  std::vector<AllowlistEntry> allowlist;
};

// Lints one file's contents. `path` must be repo-relative (it scopes
// path-based allowlist matches). Pure: no filesystem access.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view source,
                                               const Config& config);

struct ScanResult {
  std::vector<Finding> findings;  // sorted by (file, line, rule)
  std::size_t files_scanned = 0;
};

// Scans `subdirs` under `root` (default: src bench tools tests) for
// .cpp/.hpp/.cc/.h/.cxx files, running per-file rules on each and the
// cross-TU project pass over the whole set. File order is sorted, so output
// is deterministic regardless of directory enumeration order — including
// with `jobs` > 1, which fans the per-file rules out over a ThreadPool but
// merges findings in file order (0 picks one job per hardware thread).
[[nodiscard]] ScanResult lint_tree(const std::filesystem::path& root,
                                   const std::vector<std::string>& subdirs,
                                   const Config& config,
                                   std::size_t jobs = 1);


// Human-readable report; with `fix_hints`, appends the per-rule remediation
// notes for every rule that fired.
[[nodiscard]] std::string render_report(const ScanResult& result,
                                        bool fix_hints);

// Exposed for tests: comment/string stripping. `code` holds the source with
// comment and literal contents blanked (line structure preserved); `comments`
// holds the comment text per line (for pragma parsing).
struct MaskedSource {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};
[[nodiscard]] MaskedSource mask_source(std::string_view source);

// Shared between lint_source and the project pass: the per-line suppression
// sets parsed from "joules-lint: allow(...)" pragmas, indexed by 0-based
// line (a standalone-comment pragma targets the line below it). Malformed
// pragmas are ignored here — lint_source owns reporting them, exactly once.
[[nodiscard]] std::vector<std::vector<std::string>> collect_suppressions(
    const MaskedSource& masked);

// True when `file` is covered for `rule` by an allowlist entry (exact file
// match or directory-prefix match).
[[nodiscard]] bool allowlisted(const Config& config, std::string_view file,
                               std::string_view rule);

}  // namespace joules::lint
