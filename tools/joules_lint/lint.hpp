// joules_lint — the repo's determinism lint.
//
// The library's scientific claim is bit-identical replay: parallel sweeps,
// fault hashing, and `%.17g` checkpoints must reproduce exactly, run to run,
// machine to machine. The compiler cannot enforce that; this lint bans the
// constructs that silently break it:
//
//   unseeded-rng         default-constructed std::mt19937 / mt19937_64
//   random-device        std::random_device (entropy differs per run)
//   libc-rand            rand() / srand() (global hidden state)
//   wall-clock           system_clock / steady_clock / time(nullptr) / ... in
//                        simulation code (lab time comes from SimTime)
//   float-equality       == / != against a floating-point literal
//   unordered-iteration  range-for over an unordered_map/unordered_set
//                        (iteration order is unspecified; feeding it to a
//                        checkpoint writer or hash breaks replay)
//   locale-format        setlocale / std::locale / imbue anywhere, plus
//                        std::to_string / stod / stof / strtod / atof inside
//                        serialization code (locale-dependent decimal point)
//
// Matching runs on comment- and string-stripped source, so documentation and
// format strings never trip a rule. Two suppression channels exist, and both
// must carry a written reason:
//
//   * a per-line pragma comment of the form
//     "joules-lint: allow(<rule>) -- <reason>" on the offending line, or
//   * an entry in the checked-in allowlist (tools/joules_lint/allowlist.txt):
//     "<path> <rule> <reason>" per line, matching a file or directory prefix.
//
// A pragma with no reason, or naming an unknown rule, is itself a finding
// (rule id "bad-suppression"); a malformed allowlist throws.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace joules::lint {

struct Rule {
  std::string_view id;
  std::string_view summary;   // one-line "why this is banned"
  std::string_view fix_hint;  // shown by --fix-hints / joulesctl lint
};

// The rule table, in reporting order. Stable ids; tests and the allowlist
// reference them by name.
[[nodiscard]] const std::vector<Rule>& rules();
[[nodiscard]] bool is_known_rule(std::string_view id);

struct Finding {
  std::string file;     // repo-relative path, forward slashes
  std::size_t line = 0; // 1-based
  std::string rule;
  std::string message;
  std::string excerpt;  // trimmed source line
};

struct AllowlistEntry {
  std::string path;    // repo-relative file path or directory prefix
  std::string rule;
  std::string reason;  // mandatory
};

// Parses the allowlist format: one "<path> <rule> <reason...>" entry per
// line; '#' starts a comment. Throws std::invalid_argument on a malformed
// line, an unknown rule id, or a missing reason.
[[nodiscard]] std::vector<AllowlistEntry> parse_allowlist(std::string_view text);

struct Config {
  std::vector<AllowlistEntry> allowlist;
};

// Lints one file's contents. `path` must be repo-relative (it scopes
// path-based allowlist matches). Pure: no filesystem access.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view source,
                                               const Config& config);

struct ScanResult {
  std::vector<Finding> findings;  // sorted by (file, line, rule)
  std::size_t files_scanned = 0;
};

// Scans `subdirs` under `root` (default: src bench tools tests) for
// .cpp/.hpp/.cc/.h/.cxx files. File order is sorted, so output is
// deterministic regardless of directory enumeration order.
[[nodiscard]] ScanResult lint_tree(const std::filesystem::path& root,
                                   const std::vector<std::string>& subdirs,
                                   const Config& config);

// Human-readable report; with `fix_hints`, appends the per-rule remediation
// notes for every rule that fired.
[[nodiscard]] std::string render_report(const ScanResult& result,
                                        bool fix_hints);

// Exposed for tests: comment/string stripping. `code` holds the source with
// comment and literal contents blanked (line structure preserved); `comments`
// holds the comment text per line (for pragma parsing).
struct MaskedSource {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};
[[nodiscard]] MaskedSource mask_source(std::string_view source);

}  // namespace joules::lint
