#include "joules_lint/project.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <stdexcept>
#include <string_view>
#include <tuple>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace joules::lint {
namespace {

// ---------------------------------------------------------------------------
// The layer DAG. Rank increases toward the application layer; a src/ file
// may include its own layer or any layer below it. Adding a directory to
// src/ means adding it here (the lint fails loudly on includes it cannot
// rank only when they cross a known boundary, so a missing entry shows up
// as silence in the --graph dump, not a spurious failure).

const std::map<std::string, int>& layer_ranks() {
  static const std::map<std::string, int> kRanks = {
      {"util", 1},
      {"stats", 2},
      {"obs", 2},
      {"datasheet", 3},
      {"device", 3},
      {"psu", 3},
      {"meter", 3},
      {"model", 3},
      {"traffic", 4},
      {"telemetry", 4},
      {"network", 4},
      {"sleep", 4},
      {"zoo", 5},
      {"netpowerbench", 5},
      {"net", 5},
      {"autopower", 6},
  };
  return kRanks;
}

// Directories whose headers must never be included from src/: test code and
// the tools that *check* the library cannot become its dependencies.
bool is_foreign_tree(std::string_view top) {
  return top == "tests" || top == "tools" || top == "joules_lint" ||
         top == "bench_compare";
}

// ---------------------------------------------------------------------------
// Small text helpers (the lint is textual by design; see the file header of
// project.hpp for the accuracy contract).

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_word(std::string_view haystack, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = haystack.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(haystack[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= haystack.size() || !is_ident_char(haystack[end]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

std::string last_identifier(std::string_view text) {
  std::size_t end = text.size();
  while (end > 0 && !is_ident_char(text[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  return std::string(text.substr(begin, end - begin));
}

bool is_cpp_keyword(std::string_view word) {
  static const std::set<std::string_view> kWords = {
      "if",     "for",           "while",    "switch",  "catch",
      "return", "do",            "else",     "new",     "delete",
      "throw",  "sizeof",        "alignof",  "decltype", "defined",
      "assert", "static_assert", "alignas",  "noexcept"};
  return kWords.count(word) > 0;
}

// "net" for "src/net/...", empty for anything that is not a src/ subtree.
std::string src_top(std::string_view path) {
  if (!starts_with(path, "src/")) return {};
  const std::string_view rest = path.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(rest.substr(0, slash));
}

// ---------------------------------------------------------------------------
// Per-file preparation shared by all three rule families.

struct Prepared {
  MaskedSource masked;
  std::vector<std::string> raw_lines;
  std::vector<std::vector<std::string>> allowed;  // pragma suppressions
  std::string top;                                // src/ layer directory
};

// ---------------------------------------------------------------------------
// Declaration/definition scanner. Walks masked code with a brace-scope
// stack, classifying each `{` as a class, a function body, or "other"
// (namespace, initializer, control flow inside file-scope lambdas). Function
// bodies are captured line by line for the reactor reachability walk;
// declaration heads ending in `;` are harvested for reactor markers and
// lock-order annotations.

struct FuncDef {
  std::string qualifier;  // enclosing class, or the A of an `A::b` definition
  std::string name;
  std::size_t file_index = 0;
  std::size_t line = 0;  // 1-based line the head started on
  bool reactor_root = false;
  std::vector<std::pair<std::size_t, std::string>> body;  // (1-based, masked)
};

struct ReactorDecl {
  std::string qualifier;
  std::string name;
};

struct LockEdge {
  std::string from;  // Class::member that must be acquired first
  std::string to;
  std::size_t file_index = 0;
  std::size_t line = 0;
};

const std::regex& re_lock_annotation() {
  static const std::regex re(
      R"(JOULES_ACQUIRED_(BEFORE|AFTER)\s*\(\s*([A-Za-z_]\w*)\s*\))");
  return re;
}

// `class JOULES_CAPABILITY("mutex") Mutex` / `struct Limits` → the class
// name; nullopt for enums and heads with no class/struct keyword. Attribute
// macros and the base clause are skipped.
std::optional<std::string> classify_class(const std::string& head) {
  if (contains_word(head, "enum")) return std::nullopt;
  if (!contains_word(head, "class") && !contains_word(head, "struct")) {
    return std::nullopt;
  }
  std::string h = head;
  int depth = 0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const char c = h[i];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ':' && depth == 0) {
      if (i + 1 < h.size() && h[i + 1] == ':') {
        ++i;  // scope operator, not a base clause
        continue;
      }
      h = h.substr(0, i);
      break;
    }
  }
  static const std::set<std::string_view> kSkip = {
      "class", "struct", "final", "template", "typename", "export",
      "public", "private", "protected"};
  std::string name;
  std::size_t i = 0;
  while (i < h.size()) {
    if (!is_ident_char(h[i])) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    while (i < h.size() && is_ident_char(h[i])) ++i;
    const std::string word = h.substr(begin, i - begin);
    if (kSkip.count(word) > 0 || starts_with(word, "JOULES_")) continue;
    name = word;
  }
  if (name.empty()) return std::nullopt;
  return name;
}

struct FuncHead {
  std::string qualifier;
  std::string name;
};

// The identifier (possibly `A::b`) owning the first top-level parameter list
// in a declaration/definition head. Rejects initializers (a bare `=` at
// paren depth zero) and control-flow keywords, so `if (...) {` inside a
// file-scope lambda never becomes a function.
std::optional<FuncHead> classify_function(const std::string& head) {
  int depth = 0;
  std::size_t open = std::string::npos;
  for (std::size_t i = 0; i < head.size(); ++i) {
    const char c = head[i];
    if (c == '=' && depth == 0) {
      const char prev = i > 0 ? head[i - 1] : '\0';
      const char next = i + 1 < head.size() ? head[i + 1] : '\0';
      if (prev != '=' && prev != '<' && prev != '>' && prev != '!' &&
          next != '=') {
        return std::nullopt;
      }
    }
    if (c == '(') {
      if (depth == 0 && open == std::string::npos) open = i;
      ++depth;
    } else if (c == ')') {
      --depth;
    }
  }
  if (open == std::string::npos) return std::nullopt;
  std::size_t end = open;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(head[end - 1])) != 0) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && (is_ident_char(head[begin - 1]) || head[begin - 1] == ':')) {
    --begin;
  }
  std::string token = head.substr(begin, end - begin);
  while (starts_with(token, ":")) token = token.substr(1);
  if (token.empty()) return std::nullopt;
  FuncHead out;
  const std::size_t sep = token.rfind("::");
  if (sep == std::string::npos) {
    out.name = token;
  } else {
    out.qualifier = token.substr(0, sep);
    out.name = token.substr(sep + 2);
  }
  if (out.name.empty() || is_cpp_keyword(out.name) ||
      std::isdigit(static_cast<unsigned char>(out.name[0])) != 0) {
    return std::nullopt;
  }
  return out;
}

void scan_file(std::size_t file_index, const Prepared& prep,
               std::vector<FuncDef>& defs, std::vector<ReactorDecl>& decls,
               std::vector<LockEdge>& lock_edges) {
  const std::vector<std::string>& code = prep.masked.code;
  std::vector<std::optional<std::string>> scopes;  // class name, or other
  std::string head;
  std::size_t head_line = 1;
  bool head_has_content = false;
  int paren_depth = 0;
  int func_depth = 0;
  FuncDef current;
  bool recorded = false;  // current line already appended to current.body

  const auto innermost_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->has_value()) return **it;
    }
    return {};
  };
  const auto clear_head = [&] {
    head.clear();
    head_has_content = false;
  };
  const auto note_head_char = [&](char c, std::size_t li) {
    if (!head_has_content && std::isspace(static_cast<unsigned char>(c)) == 0) {
      head_has_content = true;
      head_line = li + 1;
    }
    head += c;
  };

  // A declaration head ended in ';' without a body: reactor markers live on
  // declarations (the definition may sit in another TU), and lock-order
  // annotations are member declarations.
  const auto harvest_decl = [&] {
    if (!head_has_content) return;
    if (contains_word(head, "JOULES_REACTOR_CONTEXT")) {
      if (const auto fn = classify_function(head)) {
        decls.push_back(
            {fn->qualifier.empty() ? innermost_class() : fn->qualifier,
             fn->name});
      }
    }
    auto it = std::sregex_iterator(head.begin(), head.end(),
                                   re_lock_annotation());
    const auto end = std::sregex_iterator();
    if (it == end) return;
    const std::string member = last_identifier(
        head.substr(0, static_cast<std::size_t>(it->position(0))));
    if (member.empty()) return;
    const std::string cls = innermost_class();
    const auto qualify = [&](const std::string& name) {
      return cls.empty() ? name : cls + "::" + name;
    };
    for (; it != end; ++it) {
      const std::smatch& m = *it;
      // acquired_before(x) on member m: m precedes x. acquired_after(x): x
      // precedes m. Edges always point from the earlier lock to the later.
      if (m[1].str() == "BEFORE") {
        lock_edges.push_back(
            {qualify(member), qualify(m[2].str()), file_index, head_line});
      } else {
        lock_edges.push_back(
            {qualify(m[2].str()), qualify(member), file_index, head_line});
      }
    }
  };

  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    const std::string trimmed = trim(line);
    if (!trimmed.empty() && trimmed[0] == '#') continue;  // preprocessor
    recorded = false;
    if (func_depth > 0) {
      current.body.emplace_back(li + 1, line);
      recorded = true;
    }
    for (std::size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      if (func_depth > 0) {
        if (c == '{') {
          ++func_depth;
        } else if (c == '}' && --func_depth == 0) {
          defs.push_back(std::move(current));
          current = FuncDef{};
          recorded = false;
        }
        continue;
      }
      switch (c) {
        case '(':
          ++paren_depth;
          note_head_char(c, li);
          break;
        case ')':
          if (paren_depth > 0) --paren_depth;
          note_head_char(c, li);
          break;
        case ';':
          if (paren_depth == 0) {
            harvest_decl();
            clear_head();
          } else {
            note_head_char(c, li);
          }
          break;
        case '{': {
          if (paren_depth > 0) {
            // Braced init inside a parameter list; not a scope of interest.
            scopes.push_back(std::nullopt);
            break;
          }
          if (const auto cls = classify_class(head)) {
            scopes.push_back(*cls);
            clear_head();
            break;
          }
          if (head_has_content && !contains_word(head, "namespace")) {
            if (const auto fn = classify_function(head)) {
              current.qualifier =
                  fn->qualifier.empty() ? innermost_class() : fn->qualifier;
              current.name = fn->name;
              current.file_index = file_index;
              current.line = head_line;
              current.reactor_root =
                  contains_word(head, "JOULES_REACTOR_CONTEXT");
              func_depth = 1;
              if (!recorded) {
                current.body.emplace_back(li + 1, line);
                recorded = true;
              }
              clear_head();
              break;
            }
          }
          scopes.push_back(std::nullopt);
          clear_head();
          break;
        }
        case '}':
          if (!scopes.empty()) scopes.pop_back();
          clear_head();
          break;
        default:
          note_head_char(c, li);
          // An access specifier is not part of the following declaration's
          // head (it would skew the head's start line, which anchors
          // lock-order findings).
          if (c == ':') {
            const std::string t = trim(head);
            if (t == "public:" || t == "private:" || t == "protected:") {
              clear_head();
            }
          }
          break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// reactor-blocking-call: reachability from JOULES_REACTOR_CONTEXT roots.

// Calls that park the calling thread. `accept` is deliberately absent:
// TcpListener::try_accept wraps ::accept nonblockingly, and the blocking
// overload is caught through wait_readable / ::poll instead.
constexpr std::string_view kBlockingTokens[] = {
    "sleep_for",     "sleep_until", "usleep",           "nanosleep",
    "send_all",      "recv_exact",  "wait_readable",    "connect_loopback",
    "read_frame",    "write_frame"};

// The sanctioned blocking seam: reactors block *only* inside poll_fds (the
// ::poll wrapper with the wakeup pipe). The walk neither flags it nor
// descends into it.
constexpr std::string_view kBlockingSeams[] = {"poll_fds"};

const std::regex& re_raw_poll() {
  static const std::regex re(R"(::\s*poll\s*\()");
  return re;
}

const std::regex& re_call() {
  static const std::regex re(
      R"((?:([A-Za-z_]\w*)\s*::\s*)?([A-Za-z_]\w*)\s*\()");
  return re;
}

bool is_blocking_token(std::string_view name) {
  return std::find(std::begin(kBlockingTokens), std::end(kBlockingTokens),
                   name) != std::end(kBlockingTokens);
}

bool is_blocking_seam(std::string_view name) {
  return std::find(std::begin(kBlockingSeams), std::end(kBlockingSeams),
                   name) != std::end(kBlockingSeams);
}

struct CallGraph {
  std::vector<FuncDef> defs;
  std::map<std::pair<std::string, std::string>, std::vector<std::size_t>>
      by_qual_name;
  std::map<std::pair<std::size_t, std::string>, std::vector<std::size_t>>
      by_file_name;
  std::map<std::string, std::vector<std::size_t>> by_name;
};

void index_graph(CallGraph& graph) {
  for (std::size_t i = 0; i < graph.defs.size(); ++i) {
    const FuncDef& def = graph.defs[i];
    graph.by_qual_name[{def.qualifier, def.name}].push_back(i);
    graph.by_file_name[{def.file_index, def.name}].push_back(i);
    graph.by_name[def.name].push_back(i);
  }
}

// Same class → same file → unique project-wide; ambiguous names resolve to
// nothing (the walk skips rather than guesses).
std::vector<std::size_t> resolve_call(const CallGraph& graph,
                                      const std::string& caller_qualifier,
                                      std::size_t caller_file,
                                      const std::string& explicit_qualifier,
                                      const std::string& name) {
  if (!explicit_qualifier.empty()) {
    const auto it = graph.by_qual_name.find({explicit_qualifier, name});
    if (it != graph.by_qual_name.end()) return it->second;
  }
  if (!caller_qualifier.empty()) {
    const auto it = graph.by_qual_name.find({caller_qualifier, name});
    if (it != graph.by_qual_name.end()) return it->second;
  }
  const auto fit = graph.by_file_name.find({caller_file, name});
  if (fit != graph.by_file_name.end()) return fit->second;
  const auto nit = graph.by_name.find(name);
  if (nit != graph.by_name.end() && nit->second.size() == 1) {
    return nit->second;
  }
  return {};
}

std::string display_name(const FuncDef& def) {
  return def.qualifier.empty() ? def.name : def.qualifier + "::" + def.name;
}

template <typename Emit>
void check_reactor(const std::vector<FileSource>& files,
                   const CallGraph& graph,
                   const std::vector<ReactorDecl>& decls, const Emit& emit) {
  std::set<std::size_t> roots;
  for (std::size_t i = 0; i < graph.defs.size(); ++i) {
    if (graph.defs[i].reactor_root) roots.insert(i);
  }
  for (const ReactorDecl& decl : decls) {
    const auto it = graph.by_qual_name.find({decl.qualifier, decl.name});
    if (it != graph.by_qual_name.end()) {
      roots.insert(it->second.begin(), it->second.end());
      continue;
    }
    const auto nit = graph.by_name.find(decl.name);
    if (nit != graph.by_name.end() && nit->second.size() == 1) {
      roots.insert(nit->second.begin(), nit->second.end());
    }
  }

  // BFS in a deterministic order: roots sorted by (file path, line).
  std::vector<std::size_t> queue(roots.begin(), roots.end());
  std::sort(queue.begin(), queue.end(), [&](std::size_t a, std::size_t b) {
    return std::tie(files[graph.defs[a].file_index].path, graph.defs[a].line) <
           std::tie(files[graph.defs[b].file_index].path, graph.defs[b].line);
  });
  std::map<std::size_t, std::string> chain;
  for (const std::size_t root : queue) chain[root] = display_name(graph.defs[root]);
  std::set<std::size_t> visited(queue.begin(), queue.end());

  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t idx = queue[qi];
    const FuncDef& def = graph.defs[idx];
    const std::string& path = chain[idx];
    for (const auto& [line_no, text] : def.body) {
      for (const std::string_view token : kBlockingTokens) {
        if (contains_word(text, token)) {
          emit(def.file_index, line_no, "reactor-blocking-call",
               "blocking call `" + std::string(token) +
                   "` reachable from a reactor context via " + path);
        }
      }
      if (std::regex_search(text, re_raw_poll()) &&
          !contains_word(text, "poll_fds")) {
        emit(def.file_index, line_no, "reactor-blocking-call",
             "raw ::poll reachable from a reactor context via " + path +
                 "; block only inside the poll_fds seam");
      }
      const auto end = std::sregex_iterator();
      for (auto it = std::sregex_iterator(text.begin(), text.end(), re_call());
           it != end; ++it) {
        const std::string explicit_qual = (*it)[1].str();
        const std::string name = (*it)[2].str();
        if (is_cpp_keyword(name) || is_blocking_token(name) ||
            is_blocking_seam(name)) {
          continue;
        }
        for (const std::size_t target : resolve_call(
                 graph, def.qualifier, def.file_index, explicit_qual, name)) {
          if (visited.insert(target).second) {
            chain[target] = path + " -> " + display_name(graph.defs[target]);
            queue.push_back(target);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// lock-order: cycle detection over the ACQUIRED_BEFORE/AFTER edge set.

template <typename Emit>
void check_lock_order(const std::vector<LockEdge>& edges, const Emit& emit) {
  std::map<std::string, std::vector<std::size_t>> adjacency;
  std::map<std::pair<std::string, std::string>, std::size_t> first_edge;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    adjacency[edges[i].from].push_back(i);
    first_edge.emplace(std::make_pair(edges[i].from, edges[i].to), i);
  }
  for (auto& [node, out] : adjacency) {
    std::sort(out.begin(), out.end(), [&](std::size_t a, std::size_t b) {
      return edges[a].to < edges[b].to;
    });
  }

  std::map<std::string, int> color;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::set<std::string> reported;

  const auto report_cycle = [&](std::vector<std::string> cycle) {
    // Canonical rotation (smallest node first) so one cycle reports once no
    // matter where the DFS entered it.
    const auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min_it, cycle.end());
    std::string key;
    for (const std::string& node : cycle) key += node + ";";
    if (!reported.insert(key).second) return;

    std::string text;
    std::pair<std::string, std::string> best_edge;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const std::string& from = cycle[i];
      const std::string& to = cycle[(i + 1) % cycle.size()];
      if (i == 0 || std::make_pair(from, to) < best_edge) {
        best_edge = {from, to};
      }
      text += from + " -> ";
    }
    text += cycle.front();
    const auto anchor = first_edge.find(best_edge);
    if (anchor == first_edge.end()) return;
    const LockEdge& edge = edges[anchor->second];
    emit(edge.file_index, edge.line, "lock-order",
         "lock acquisition order cycle: " + text +
             " (JOULES_ACQUIRED_BEFORE/AFTER annotations disagree on a "
             "global order)");
  };

  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        const auto it = adjacency.find(node);
        if (it != adjacency.end()) {
          for (const std::size_t edge_index : it->second) {
            const std::string& to = edges[edge_index].to;
            const int state = color[to];
            if (state == 1) {
              const auto at = std::find(stack.begin(), stack.end(), to);
              report_cycle(std::vector<std::string>(at, stack.end()));
            } else if (state == 0) {
              dfs(to);
            }
          }
        }
        color[node] = 2;
        stack.pop_back();
      };
  for (const auto& [node, out] : adjacency) {
    if (color[node] == 0) dfs(node);
  }
}

// ---------------------------------------------------------------------------
// layer-dag: include edges against the rank table.

const std::regex& re_include() {
  static const std::regex re(R"(^\s*#\s*include\s*"([^"]+)\")");
  return re;
}

template <typename Emit>
void check_layer_dag(const std::vector<Prepared>& prepared, const Emit& emit) {
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    const Prepared& prep = prepared[i];
    if (prep.top.empty()) continue;  // only src/<layer>/ files are ranked
    const auto file_rank = layer_ranks().find(prep.top);
    for (std::size_t li = 0; li < prep.raw_lines.size(); ++li) {
      std::smatch m;
      if (!std::regex_search(prep.raw_lines[li], m, re_include())) continue;
      const std::string include = m[1].str();
      const std::size_t slash = include.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string include_top = include.substr(0, slash);
      if (is_foreign_tree(include_top)) {
        emit(i, li + 1, "layer-dag",
             "src/" + prep.top + " includes \"" + include +
                 "\": tests/ and tool headers must not leak into src/");
        continue;
      }
      const auto include_rank = layer_ranks().find(include_top);
      if (file_rank == layer_ranks().end() ||
          include_rank == layer_ranks().end()) {
        continue;
      }
      if (include_rank->second > file_rank->second) {
        emit(i, li + 1, "layer-dag",
             "src/" + prep.top + " (layer " +
                 std::to_string(file_rank->second) + ") must not include " +
                 include_top + "/ (layer " +
                 std::to_string(include_rank->second) +
                 "): the edge points up the DAG");
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------

std::vector<FileSource> load_tree(const std::filesystem::path& root,
                                  const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  static const std::vector<std::string> kExtensions = {".cpp", ".hpp", ".cc",
                                                       ".h", ".cxx"};
  std::vector<fs::path> paths;
  for (const std::string& subdir : subdirs) {
    const fs::path dir = root / subdir;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (std::find(kExtensions.begin(), kExtensions.end(), ext) ==
          kExtensions.end()) {
        continue;
      }
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<FileSource> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    const auto contents = read_text_file(path);
    if (!contents) {
      throw std::runtime_error("joules_lint: cannot read " + path.string());
    }
    files.push_back(
        {fs::relative(path, root).generic_string(), std::move(*contents)});
  }
  return files;
}

std::vector<Finding> lint_project(const std::vector<FileSource>& files,
                                  const Config& config) {
  std::vector<Prepared> prepared(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    prepared[i].masked = mask_source(files[i].source);
    prepared[i].raw_lines = split_lines(files[i].source);
    prepared[i].allowed = collect_suppressions(prepared[i].masked);
    prepared[i].top = src_top(files[i].path);
  }

  std::vector<Finding> findings;
  const auto emit = [&](std::size_t file_index, std::size_t line,
                        const char* rule, std::string message) {
    const Prepared& prep = prepared[file_index];
    const std::size_t index = line - 1;
    if (index < prep.allowed.size()) {
      const auto& allowed = prep.allowed[index];
      if (std::find(allowed.begin(), allowed.end(), rule) != allowed.end()) {
        return;
      }
    }
    if (allowlisted(config, files[file_index].path, rule)) return;
    findings.push_back(
        {files[file_index].path, line, rule, std::move(message),
         index < prep.raw_lines.size() ? trim(prep.raw_lines[index]) : ""});
  };

  check_layer_dag(prepared, emit);

  // The call graph and lock contracts are library properties: only src/ is
  // scanned, so a test helper cannot shadow a library function by name.
  CallGraph graph;
  std::vector<ReactorDecl> decls;
  std::vector<LockEdge> lock_edges;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!starts_with(files[i].path, "src/")) continue;
    scan_file(i, prepared[i], graph.defs, decls, lock_edges);
  }
  index_graph(graph);
  check_reactor(files, graph, decls, emit);
  check_lock_order(lock_edges, emit);

  // Multiple roots can reach the same blocking line; keep one finding per
  // (file, line, rule), picking the lexicographically first message.
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line, a.rule) ==
                                      std::tie(b.file, b.line, b.rule);
                             }),
                 findings.end());
  return findings;
}

std::string render_layer_graph_dot(const std::vector<FileSource>& files) {
  std::set<std::string> nodes;
  std::set<std::pair<std::string, std::string>> edges;
  for (const FileSource& file : files) {
    const std::string top = src_top(file.path);
    if (top.empty() || layer_ranks().count(top) == 0) continue;
    nodes.insert(top);
    for (const std::string& raw : split_lines(file.source)) {
      std::smatch m;
      if (!std::regex_search(raw, m, re_include())) continue;
      const std::string include = m[1].str();
      const std::size_t slash = include.find('/');
      if (slash == std::string::npos) continue;
      const std::string include_top = include.substr(0, slash);
      if (layer_ranks().count(include_top) == 0 || include_top == top) {
        continue;
      }
      nodes.insert(include_top);
      edges.emplace(top, include_top);
    }
  }

  std::string out = "digraph joules_layers {\n  rankdir=BT;\n"
                    "  node [shape=box];\n";
  int max_rank = 0;
  for (const auto& [dir, rank] : layer_ranks()) max_rank = std::max(max_rank, rank);
  for (int rank = 1; rank <= max_rank; ++rank) {
    std::string row;
    for (const std::string& node : nodes) {  // std::set: sorted
      const auto it = layer_ranks().find(node);
      if (it != layer_ranks().end() && it->second == rank) {
        row += " \"" + node + "\";";
      }
    }
    if (!row.empty()) out += "  { rank=same;" + row + " }\n";
  }
  for (const auto& [from, to] : edges) {
    out += "  \"" + from + "\" -> \"" + to + "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace joules::lint
