// joules_lint — CLI front end to the determinism lint (see lint.hpp) and
// the cross-TU project pass (see project.hpp).
//
//   joules_lint [--root DIR] [--allowlist FILE] [--fix-hints]
//               [--report FILE] [--graph FILE] [--jobs N] [subdir...]
//
// Scans src/ bench/ tools/ tests/ under --root (default: the current
// directory) unless explicit subdirs are given. Exit codes: 0 clean,
// 1 findings, 2 usage or I/O error — so `ctest -L lint` and CI can gate on
// it directly. --report writes the same report to a file (uploaded as a CI
// artifact); --graph writes the layer DAG with observed include edges as
// Graphviz DOT (byte-identical across runs of the same tree); --jobs fans
// the per-file rules out over N threads (0 = one per hardware thread)
// without changing the output; --fix-hints appends per-rule remediation
// notes.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "joules_lint/lint.hpp"
#include "joules_lint/project.hpp"
#include "util/atomic_file.hpp"

namespace {

int usage() {
  std::fputs(
      "usage: joules_lint [--root DIR] [--allowlist FILE] [--fix-hints]\n"
      "                   [--report FILE] [--graph FILE] [--jobs N]\n"
      "                   [subdir...]\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string allowlist_path;
  std::string report_path;
  std::string graph_path;
  std::size_t jobs = 1;
  bool fix_hints = false;
  std::vector<std::string> subdirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--graph" && i + 1 < argc) {
      graph_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      try {
        jobs = std::stoul(argv[++i]);
      } catch (const std::exception&) {
        return usage();
      }
    } else if (arg == "--fix-hints") {
      fix_hints = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      subdirs.push_back(arg);
    }
  }
  if (subdirs.empty()) subdirs = {"src", "bench", "tools", "tests"};
  if (allowlist_path.empty()) {
    allowlist_path = root + "/tools/joules_lint/allowlist.txt";
  }

  try {
    joules::lint::Config config;
    if (const auto text = joules::read_text_file(allowlist_path)) {
      config.allowlist = joules::lint::parse_allowlist(*text);
    }
    const joules::lint::ScanResult result =
        joules::lint::lint_tree(root, subdirs, config, jobs);
    const std::string report = joules::lint::render_report(result, fix_hints);
    std::fputs(report.c_str(), stdout);
    if (!report_path.empty()) {
      joules::write_file_atomic(report_path, report);
    }
    if (!graph_path.empty()) {
      const std::string dot = joules::lint::render_layer_graph_dot(
          joules::lint::load_tree(root, subdirs));
      joules::write_file_atomic(graph_path, dot);
    }
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "joules_lint: %s\n", error.what());
    return 2;
  }
}
