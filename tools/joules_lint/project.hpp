// joules_lint project pass — cross-TU architecture and concurrency rules.
//
// The per-file rules in lint.hpp catch nondeterminism one translation unit
// can exhibit on its own. Three properties of this codebase only break
// *between* files, so they get a whole-tree pass:
//
//   layer-dag              src/ is a layered DAG:
//                            util → stats/obs → datasheet/device/psu/meter/
//                            model → traffic/telemetry/network/sleep →
//                            zoo/netpowerbench/net → autopower.
//                          Same-layer includes are fine; an #include pointing
//                          up the DAG is a back edge, and src/ pulling tests/
//                          or tool headers (joules_lint/, bench_compare/) is
//                          a leak in either direction.
//   reactor-blocking-call  functions marked JOULES_REACTOR_CONTEXT (see
//                          util/thread_annotations.hpp) run on
//                          single-threaded poll loops; a blocking call —
//                          sleeps, blocking socket I/O — reachable from one
//                          parks every connection that loop serves. The only
//                          sanctioned blocking point is the poll_fds seam,
//                          which the reachability walk does not descend into.
//   lock-order             JOULES_ACQUIRED_BEFORE/AFTER annotations form a
//                          lock acquisition graph; a cycle means two call
//                          paths can take the same locks in opposite orders
//                          and deadlock.
//
// The pass is textual, like the per-file rules: it runs on comment- and
// string-stripped source, builds an approximate per-class call graph, and
// resolves calls by name with a same-class → same-file → unique-project-wide
// preference — an ambiguous name is skipped, never guessed, so the rule errs
// toward silence rather than false positives. All three families share
// lint.hpp's suppression channels: a per-line pragma on the reported line, or
// an allowlist entry for the reported file.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "joules_lint/lint.hpp"

namespace joules::lint {

// One lintable file, read into memory. `path` is repo-relative with forward
// slashes — the project rules key layer membership off it.
struct FileSource {
  std::string path;
  std::string source;
};

// Reads every .cpp/.hpp/.cc/.h/.cxx file under root/subdirs, sorted by
// path (the same set lint_tree scans). Throws on an unreadable file.
[[nodiscard]] std::vector<FileSource> load_tree(
    const std::filesystem::path& root, const std::vector<std::string>& subdirs);

// Runs the three cross-TU rule families over the file set. Findings are
// sorted by (file, line, rule) and already filtered through pragma and
// allowlist suppressions; malformed pragmas are NOT re-reported here
// (lint_source owns those findings).
[[nodiscard]] std::vector<Finding> lint_project(
    const std::vector<FileSource>& files, const Config& config);

// Renders the layer DAG as Graphviz DOT: one rank row per layer, one node
// per src/ top-level directory observed in `files`, one edge per observed
// include dependency between directories. Output is fully sorted, so two
// renders of the same tree are byte-identical (CI diffs the artifact).
[[nodiscard]] std::string render_layer_graph_dot(
    const std::vector<FileSource>& files);

}  // namespace joules::lint
